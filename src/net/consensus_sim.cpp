#include "net/consensus_sim.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "support/assert.hpp"

namespace blockpilot::net {
namespace {

evm::BlockContext ctx_for(std::uint64_t height, const Address& coinbase) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = coinbase;
  return ctx;
}

/// One validator node: its own ledger replica, its own commit pipeline
/// (backed by the shared commit pool), and its speculative tip — the post
/// state of the last block it voted for, which may still have its root
/// check in flight.
struct ValidatorNode {
  ValidatorNode(const state::WorldState& genesis, ThreadPool* commit_pool)
      : chain(genesis), commits(commit_pool) {
    tip = chain.head_state();
  }

  chain::Blockchain chain;
  commit::CommitPipeline commits;
  std::shared_ptr<const state::WorldState> tip;
  std::uint64_t busy_until_us = 0;  // virtual time this node frees up
};

/// One validator's view of one round, parked until the settle pass.
struct PendingValidation {
  std::vector<core::BlockBundle> bundles;        // this node's arrival order
  std::vector<core::ValidationOutcome> outcomes;  // parallel to bundles
  Hash256 vote;                // provisional vote (zero = no valid sibling)
  std::size_t vote_idx = SIZE_MAX;
};

struct PendingRound {
  RoundReport report;
  Hash256 canonical_hash;
  std::vector<PendingValidation> per_validator;
};

}  // namespace

ConsensusSim::ConsensusSim(ConsensusSimConfig config)
    : config_(std::move(config)) {
  BP_ASSERT(config_.proposer_nodes >= 1);
  BP_ASSERT(config_.validator_nodes >= 1);
  BP_ASSERT(config_.proposers_per_round >= 1);
  BP_ASSERT(config_.proposers_per_round <= config_.proposer_nodes);
}

ConsensusSimResult ConsensusSim::run() {
  ConsensusSimResult result;
  workload::WorkloadGenerator gen(config_.workload);
  const state::WorldState genesis = gen.genesis();

  // Node ids: [0, P) proposers, [P, P+V) validators.
  const std::size_t P = config_.proposer_nodes;
  const std::size_t V = config_.validator_nodes;
  SimNetwork network(P + V, config_.link);

  ThreadPool workers(4);
  std::unique_ptr<ThreadPool> commit_pool;
  if (config_.commit_threads > 0)
    commit_pool = std::make_unique<ThreadPool>(config_.commit_threads);
  commit::CommitPipeline proposer_commits(commit_pool.get());

  std::vector<std::unique_ptr<ValidatorNode>> validators;
  validators.reserve(V);
  for (std::size_t v = 0; v < V; ++v)
    validators.push_back(
        std::make_unique<ValidatorNode>(genesis, commit_pool.get()));

  core::ProposerConfig pcfg;
  pcfg.threads = config_.proposer_threads;
  pcfg.commit_pipeline = &proposer_commits;
  core::PipelineConfig plcfg;
  plcfg.workers = config_.validator_workers;

  auto canonical_state = std::make_shared<const state::WorldState>(genesis);
  Hash256 canonical_head_hash = validators[0]->chain.genesis_hash();
  std::uint64_t clock_us = 0;  // global round clock (virtual)
  std::vector<PendingRound> pending;

  for (std::uint64_t height = 1; height <= config_.rounds; ++height) {
    PendingRound pr;
    RoundReport& report = pr.report;
    report.height = height;

    // ---- propose: round-robin leader set over the proposer nodes ----
    // Sealing is routed through the proposer commit pipeline; await_seal()
    // closes the future before broadcast (an unsealed root cannot gossip).
    std::uint64_t propose_end_us = clock_us;
    for (std::size_t k = 0; k < config_.proposers_per_round; ++k) {
      const NodeId proposer_id =
          (height * config_.proposers_per_round + k) % P;
      txpool::TxPool pool;
      pool.add_all(gen.next_block());
      core::OccWsiProposer proposer(pcfg);
      core::ProposedBlock blk = proposer.propose(
          *canonical_state,
          ctx_for(height, Address::from_id(0xFEE000 + proposer_id)), pool,
          workers);
      blk.block.header.parent_hash = canonical_head_hash;
      blk.await_seal();
      if (height == config_.byzantine_height) {
        // Byzantine proposer set: gossip a block whose sealed root lies.
        // Execution still replays cleanly, so the lie survives until the
        // validators' commitments settle.
        blk.block.header.state_root.bytes[0] ^= 0xA5;
      }
      propose_end_us = std::max(
          propose_end_us, clock_us + blk.stats.vtime_makespan / kGasPerUs);

      chain::BlockAnnouncement ann;
      ann.block = std::move(blk.block);
      ann.profile = std::move(blk.profile);
      network.broadcast(proposer_id, propose_end_us,
                        chain::encode_announcement(ann));
    }
    report.siblings = config_.proposers_per_round;

    // ---- disseminate: drain this round's gossip ----
    // Per validator: arrival time of its LAST sibling announcement (a
    // validator can only finish the round once it has seen every fork).
    std::map<NodeId, std::uint64_t> last_arrival;
    std::map<NodeId, std::vector<core::BlockBundle>> inbox;
    while (auto msg = network.next_delivery()) {
      if (msg->to < P) continue;  // proposers ignore sibling gossip here
      const chain::BlockAnnouncement ann =
          chain::decode_announcement(std::span(msg->payload));
      inbox[msg->to].push_back({ann.block, ann.profile});
      last_arrival[msg->to] =
          std::max(last_arrival[msg->to], msg->deliver_time_us);
    }

    // ---- validate speculatively: root checks stay on the pipelines ----
    std::uint64_t round_end_us = propose_end_us;
    pr.per_validator.resize(V);

    for (std::size_t v = 0; v < V; ++v) {
      const NodeId vid = P + v;
      auto& node = *validators[v];
      PendingValidation& pv = pr.per_validator[v];
      pv.bundles = std::move(inbox[vid]);
      BP_ASSERT_MSG(pv.bundles.size() == report.siblings,
                    "gossip lost an announcement");

      plcfg.commit_pipeline = &node.commits;
      core::ValidatorPipeline pipeline(plcfg);
      core::PipelineResult piped = pipeline.process_height_speculative(
          *node.tip, std::span(pv.bundles.data(), pv.bundles.size()),
          workers);

      // Provisional vote: first execution-valid sibling in arrival order.
      // The voted block's root check may still be in flight — that is the
      // speculative tip the next round builds on.
      for (std::size_t i = 0; i < piped.outcomes.size(); ++i) {
        if (piped.outcomes[i].valid) {
          pv.vote = pv.bundles[i].block.header.hash();
          pv.vote_idx = i;
          break;
        }
      }
      if (pv.vote_idx != SIZE_MAX) {
        const auto& voted = piped.outcomes[pv.vote_idx];
        if (voted.commit.valid() && !voted.commit.ready())
          ++report.speculative_votes;
        node.tip = voted.exec.post_state;
      }
      pv.outcomes = std::move(piped.outcomes);

      const std::uint64_t node_end =
          std::max(node.busy_until_us, last_arrival[vid]) +
          piped.stats.vtime_makespan / kGasPerUs;
      node.busy_until_us = node_end;
      round_end_us = std::max(round_end_us, node_end);
    }
    result.speculative_votes += report.speculative_votes;

    // ---- consensus: provisional votes must be unanimous ----
    pr.canonical_hash = pr.per_validator.front().vote;
    for (const PendingValidation& pv : pr.per_validator) {
      if (pv.vote.is_zero()) {
        result.safety_held = false;
        result.violation =
            "no valid block at height " + std::to_string(height);
        return result;
      }
      if (!(pv.vote == pr.canonical_hash)) {
        result.safety_held = false;
        result.violation = "validators voted for different blocks at height " +
                           std::to_string(height);
        return result;
      }
    }

    canonical_state = pr.per_validator[0].outcomes[pr.per_validator[0].vote_idx]
                          .exec.post_state;
    canonical_head_hash = pr.canonical_hash;
    report.round_latency_us = round_end_us - clock_us;
    clock_us = round_end_us;
    pending.push_back(std::move(pr));
  }

  // ---- settle: await pending roots height by height ----
  // A root mismatch on a round's canonical block revokes that round's votes
  // and cascades to every descendant round — their executions consumed a
  // state that was never committed — truncating the settled chain there.
  bool chain_ok = true;
  for (PendingRound& pr : pending) {
    RoundReport& report = pr.report;

    if (!chain_ok) {
      // Cascade: the parent round was revoked, so every vote here is too.
      for (PendingValidation& pv : pr.per_validator) {
        for (core::ValidationOutcome& o : pv.outcomes) {
          if (o.valid) {
            o.valid = false;
            o.reject_reason = "parent block failed commitment";
          }
        }
      }
      result.revoked_votes += V;
      result.rounds.push_back(report);
      continue;
    }

    std::size_t revoked = 0;
    for (PendingValidation& pv : pr.per_validator) {
      for (core::ValidationOutcome& o : pv.outcomes) o.await_commit();
      if (!pv.outcomes[pv.vote_idx].valid) ++revoked;
    }
    // Deterministic replay means settlement is unanimous; anything else is
    // a replica divergence.
    if (revoked != 0 && revoked != V) {
      result.safety_held = false;
      result.violation = "validators disagree on settlement at height " +
                         std::to_string(report.height);
      return result;
    }
    if (revoked == V) {
      chain_ok = false;
      result.revoked_votes += V;
      result.rounds.push_back(report);
      continue;
    }

    // The round settled: ledgers advance, replicas must agree on the root.
    const Hash256 root0 =
        pr.per_validator[0].outcomes[pr.per_validator[0].vote_idx]
            .exec.state_root;
    std::size_t valid = 0;
    for (std::size_t v = 0; v < V; ++v) {
      PendingValidation& pv = pr.per_validator[v];
      if (!(pv.outcomes[pv.vote_idx].exec.state_root == root0)) {
        result.safety_held = false;
        result.violation = "replica state divergence at height " +
                           std::to_string(report.height);
        return result;
      }
      std::size_t node_valid = 0;
      for (std::size_t i = 0; i < pv.outcomes.size(); ++i) {
        if (!pv.outcomes[i].valid) continue;
        ++node_valid;
        validators[v]->chain.commit_block(pv.bundles[i].block,
                                          pv.outcomes[i].exec.post_state);
        if (v == 0 && pv.bundles[i].block.header.hash() == pr.canonical_hash)
          report.txs += pv.bundles[i].block.transactions.size();
      }
      if (v == 0) valid = node_valid;
    }
    report.settled = true;
    report.canonical_root = root0;
    report.valid_siblings = valid;
    report.uncles = valid > 0 ? valid - 1 : 0;
    result.settled_height = report.height;
    result.total_txs += report.txs;
    result.total_uncles += report.uncles;
    result.rounds.push_back(report);
  }

  result.bytes_gossiped = network.bytes_sent();
  return result;
}

}  // namespace blockpilot::net
