#include "net/consensus_sim.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "support/assert.hpp"

namespace blockpilot::net {
namespace {

evm::BlockContext ctx_for(std::uint64_t height, const Address& coinbase) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = coinbase;
  return ctx;
}

/// One validator node: its own ledger replica plus a pipeline validator.
struct ValidatorNode {
  explicit ValidatorNode(const state::WorldState& genesis)
      : chain(genesis) {}

  chain::Blockchain chain;
  std::uint64_t busy_until_us = 0;  // virtual time this node frees up
};

}  // namespace

ConsensusSim::ConsensusSim(ConsensusSimConfig config)
    : config_(std::move(config)) {
  BP_ASSERT(config_.proposer_nodes >= 1);
  BP_ASSERT(config_.validator_nodes >= 1);
  BP_ASSERT(config_.proposers_per_round >= 1);
  BP_ASSERT(config_.proposers_per_round <= config_.proposer_nodes);
}

ConsensusSimResult ConsensusSim::run() {
  ConsensusSimResult result;
  workload::WorkloadGenerator gen(config_.workload);
  const state::WorldState genesis = gen.genesis();

  // Node ids: [0, P) proposers, [P, P+V) validators.
  const std::size_t P = config_.proposer_nodes;
  const std::size_t V = config_.validator_nodes;
  SimNetwork network(P + V, config_.link);

  std::vector<std::unique_ptr<ValidatorNode>> validators;
  validators.reserve(V);
  for (std::size_t v = 0; v < V; ++v)
    validators.push_back(std::make_unique<ValidatorNode>(genesis));

  ThreadPool workers(4);
  core::ProposerConfig pcfg;
  pcfg.threads = config_.proposer_threads;
  core::PipelineConfig plcfg;
  plcfg.workers = config_.validator_workers;

  auto canonical_state = std::make_shared<const state::WorldState>(genesis);
  Hash256 canonical_head_hash = validators[0]->chain.genesis_hash();
  std::uint64_t clock_us = 0;  // global round clock (virtual)

  for (std::uint64_t height = 1; height <= config_.rounds; ++height) {
    RoundReport report;
    report.height = height;

    // ---- propose: round-robin leader set over the proposer nodes ----
    std::uint64_t propose_end_us = clock_us;
    for (std::size_t k = 0; k < config_.proposers_per_round; ++k) {
      const NodeId proposer_id =
          (height * config_.proposers_per_round + k) % P;
      txpool::TxPool pool;
      pool.add_all(gen.next_block());
      core::OccWsiProposer proposer(pcfg);
      core::ProposedBlock blk = proposer.propose(
          *canonical_state,
          ctx_for(height, Address::from_id(0xFEE000 + proposer_id)), pool,
          workers);
      blk.block.header.parent_hash = canonical_head_hash;
      propose_end_us = std::max(
          propose_end_us, clock_us + blk.stats.vtime_makespan / kGasPerUs);

      chain::BlockAnnouncement ann;
      ann.block = std::move(blk.block);
      ann.profile = std::move(blk.profile);
      network.broadcast(proposer_id, propose_end_us,
                        chain::encode_announcement(ann));
    }
    report.siblings = config_.proposers_per_round;

    // ---- disseminate: drain this round's gossip ----
    // Per validator: arrival time of its LAST sibling announcement (a
    // validator can only finish the round once it has seen every fork).
    std::map<NodeId, std::uint64_t> last_arrival;
    std::map<NodeId, std::vector<core::BlockBundle>> inbox;
    while (auto msg = network.next_delivery()) {
      if (msg->to < P) continue;  // proposers ignore sibling gossip here
      const chain::BlockAnnouncement ann =
          chain::decode_announcement(std::span(msg->payload));
      inbox[msg->to].push_back({ann.block, ann.profile});
      last_arrival[msg->to] =
          std::max(last_arrival[msg->to], msg->deliver_time_us);
    }

    // ---- validate: every validator runs its pipeline over the forks ----
    std::uint64_t round_end_us = propose_end_us;
    std::vector<Hash256> votes;  // one per validator: chosen block hash
    Hash256 canonical_hash;
    std::shared_ptr<const state::WorldState> next_state;

    for (std::size_t v = 0; v < V; ++v) {
      const NodeId vid = P + v;
      auto& node = *validators[v];
      auto& bundles = inbox[vid];
      BP_ASSERT_MSG(bundles.size() == report.siblings,
                    "gossip lost an announcement");

      core::ValidatorPipeline pipeline(plcfg);
      const core::PipelineResult piped = pipeline.process_height(
          *node.chain.head_state(), std::span(bundles), workers);

      // Vote: first valid sibling in arrival order.
      Hash256 vote;
      for (std::size_t i = 0; i < piped.outcomes.size(); ++i) {
        if (piped.outcomes[i].valid) {
          vote = bundles[i].block.header.hash();
          break;
        }
      }
      votes.push_back(vote);

      // Commit every valid sibling (uncles are stored too, §3.4).
      std::size_t valid = 0;
      for (std::size_t i = 0; i < piped.outcomes.size(); ++i) {
        if (!piped.outcomes[i].valid) continue;
        ++valid;
        node.chain.commit_block(bundles[i].block,
                                piped.outcomes[i].exec.post_state);
        if (v == 0 && bundles[i].block.header.hash() == vote) {
          next_state = piped.outcomes[i].exec.post_state;
          report.txs += bundles[i].block.transactions.size();
        }
      }
      if (v == 0) {
        report.valid_siblings = valid;
        report.uncles = valid > 0 ? valid - 1 : 0;
      }

      const std::uint64_t node_end =
          std::max(node.busy_until_us, last_arrival[vid]) +
          piped.stats.vtime_makespan / kGasPerUs;
      node.busy_until_us = node_end;
      round_end_us = std::max(round_end_us, node_end);
    }

    // ---- consensus: majority vote must be unanimous among honest nodes ----
    canonical_hash = votes.front();
    for (const Hash256& vote : votes) {
      if (!(vote == canonical_hash)) {
        result.safety_held = false;
        result.violation = "validators voted for different blocks at height " +
                           std::to_string(height);
        return result;
      }
    }
    if (next_state == nullptr) {
      result.safety_held = false;
      result.violation =
          "no valid block at height " + std::to_string(height);
      return result;
    }

    // All replicas must hold the identical canonical root.
    const Hash256 root0 =
        validators[0]->chain.state_of(canonical_hash)->state_root();
    for (std::size_t v = 1; v < V; ++v) {
      const auto st = validators[v]->chain.state_of(canonical_hash);
      if (st == nullptr || !(st->state_root() == root0)) {
        result.safety_held = false;
        result.violation =
            "replica state divergence at height " + std::to_string(height);
        return result;
      }
    }

    canonical_state = next_state;
    canonical_head_hash = canonical_hash;
    report.canonical_root = root0;
    report.round_latency_us = round_end_us - clock_us;
    clock_us = round_end_us;

    result.total_txs += report.txs;
    result.total_uncles += report.uncles;
    result.rounds.push_back(report);
  }

  result.bytes_gossiped = network.bytes_sent();
  return result;
}

}  // namespace blockpilot::net
