#include "net/consensus_sim.hpp"

#include "evm/code_analysis.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace blockpilot::net {
namespace {

evm::BlockContext ctx_for(std::uint64_t height, const Address& coinbase) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = coinbase;
  return ctx;
}

// ---------------------------------------------------------------------------
// Event-driven simulation
// ---------------------------------------------------------------------------

/// One validator node: its own ledger replica, its own commit pipeline
/// (backed by the shared commit pool), and a live ChainSession whose tip is
/// the post state of the last block it voted for — possibly with the root
/// check still in flight.
struct VNode {
  std::unique_ptr<chain::Blockchain> chain;
  std::unique_ptr<commit::CommitPipeline> commits;
  std::unique_ptr<core::ChainSession> session;
  /// Per-node bytecode cache: a validator's warm CodeAnalysis working set
  /// is its own, not shared process state.
  evm::CodeAnalysisCache analysis;
  std::uint64_t busy_until_us = 0;  // virtual time this node frees up
  std::size_t revocations = 0;      // suffix heights dropped by adopt_fork
};

enum class Phase { kIdle, kProposed, kVoted, kSettled };

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------
// The gossip layer carries two message classes, distinguished by a one-byte
// tag: RLP block announcements and consensus votes.  Votes ride the same
// faulty links as blocks — a partition that eats announcements eats votes
// too, which is exactly what the quorum/timeout machinery recovers from.

constexpr std::uint8_t kTagBlock = 0xB1;
constexpr std::uint8_t kTagVote = 0x57;

struct VoteMsg {
  std::size_t voter = 0;  // validator index (not node id)
  std::uint64_t height = 0;
  std::size_t attempt = 0;
  Hash256 hash;  // block hash the voter chose
};

Bytes encode_vote(const VoteMsg& vm) {
  Bytes out;
  out.reserve(1 + 1 + 8 + 4 + 32);
  out.push_back(kTagVote);
  out.push_back(static_cast<std::uint8_t>(vm.voter));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((vm.height >> (8 * i)) & 0xFF));
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((vm.attempt >> (8 * i)) & 0xFF));
  out.insert(out.end(), vm.hash.bytes.begin(), vm.hash.bytes.end());
  return out;
}

VoteMsg decode_vote(const Bytes& wire) {
  BP_ASSERT_MSG(wire.size() == 1 + 1 + 8 + 4 + 32 && wire[0] == kTagVote,
                "malformed vote wire");
  VoteMsg vm;
  vm.voter = wire[1];
  for (int i = 0; i < 8; ++i)
    vm.height |= static_cast<std::uint64_t>(wire[2 + i]) << (8 * i);
  std::uint32_t attempt = 0;
  for (int i = 0; i < 4; ++i)
    attempt |= static_cast<std::uint32_t>(wire[10 + i]) << (8 * i);
  vm.attempt = attempt;
  std::copy(wire.begin() + 14, wire.end(), vm.hash.bytes.begin());
  return vm;
}

/// The shared per-height scoreboard: which attempt is live, what each
/// validator has received, tallied, and decided, and the report being
/// assembled.  Everything except `attempt`, `propose_attempts`, and
/// `ready_us` is per-attempt state, wiped by reset_height().
struct HeightSim {
  Phase phase = Phase::kIdle;
  std::size_t attempt = 0;  // bumped on revocation; stales old events
  std::size_t propose_attempts = 0;  // across attempts: the liveness budget
  std::uint64_t ready_us = 0;  // when the height first became proposable
  std::uint64_t propose_start_us = 0;
  std::uint64_t vote_done_us = 0;
  Hash256 vote_hash;
  std::vector<std::vector<core::BlockBundle>> inbox;  // per validator
  std::vector<std::vector<Hash256>> got;  // header hashes received (dedup)
  std::vector<std::uint64_t> last_arrival;  // per validator
  std::vector<char> pushed;       // session push_height() done
  std::vector<Hash256> node_vote;  // own vote (zero = could not vote)
  std::vector<char> cast;          // vote broadcast
  std::vector<std::vector<Hash256>> recv;  // recv[v][w]: w's vote, seen by v
  std::vector<char> decided;       // local quorum reached
  std::vector<char> exhausted;     // retry budget burned
  std::size_t cast_count = 0;
  std::size_t decided_count = 0;
  std::size_t exhausted_count = 0;
  // Announcement store for timeout-driven re-pulls.
  std::vector<Bytes> ann_wire;  // tagged, exactly as broadcast
  std::vector<Hash256> ann_hash;
  std::vector<NodeId> ann_proposer;
  std::uint64_t commit_cost_us = 0;
  RoundReport report;
};

// Event kinds double as same-time priorities: settlement outcomes must be
// visible before arrivals/votes at the same instant, deadlines only fire
// after every same-time delivery had its chance, and proposals go last so
// they build on everything that settled "now".
constexpr int kEvSettle = 0;
constexpr int kEvArrival = 1;      // block announcement delivery
constexpr int kEvVoteArrival = 2;  // vote delivery
constexpr int kEvVoteCast = 3;     // local validation done -> broadcast vote
constexpr int kEvTimeout = 4;      // vote deadline (backoff chain)
constexpr int kEvPropose = 5;

struct Ev {
  std::uint64_t t = 0;
  int kind = kEvPropose;
  std::size_t node = 0;     // validator index for arrivals/votes/timeouts
  std::uint64_t height = 0;
  std::size_t attempt = 0;  // matched against HeightSim::attempt
  std::uint64_t seq = 0;    // creation order, final determinism tiebreak
  /// Arrival arena index (kEvArrival), vote arena index (kEvVoteArrival),
  /// or retry index (kEvTimeout).
  std::size_t payload = SIZE_MAX;
};

struct EvLater {
  bool operator()(const Ev& a, const Ev& b) const noexcept {
    if (a.t != b.t) return a.t > b.t;
    if (a.kind != b.kind) return a.kind > b.kind;
    if (a.node != b.node) return a.node > b.node;
    return a.seq > b.seq;
  }
};

struct ArrivalPayload {
  std::size_t validator = 0;
  core::BlockBundle bundle;
};

class EventDriver {
 public:
  explicit EventDriver(const ConsensusSimConfig& config)
      : config_(config),
        P_(config.proposer_nodes),
        V_(config.validator_nodes),
        ppr_(config.proposers_per_round),
        quorum_(ConsensusSim::quorum_size(config.validator_nodes,
                                          config.quorum_votes)),
        gen_(config.workload),
        genesis_(gen_.genesis()),
        network_(P_ + V_, config.link),
        workers_(4) {
    BP_ASSERT_MSG(V_ <= 255, "vote wire carries the voter in one byte");
    if (config_.commit_threads > 0)
      commit_pool_ = std::make_unique<ThreadPool>(config_.commit_threads);
    proposer_commits_ =
        std::make_unique<commit::CommitPipeline>(commit_pool_.get());
    proposer_commits_->set_settle_observer(measured_observer());

    pcfg_.threads = config_.proposer_threads;
    pcfg_.mode = config_.proposer_mode;
    pcfg_.commit_pipeline = proposer_commits_.get();
    pcfg_.analysis_cache = &proposer_analysis_;
    // Under kAdaptive each proposer carries its own conflict-ratio signal
    // across rounds; a fresh engine is built per proposal, so the state
    // lives here and is injected via the config slot.
    adaptive_ratio_.assign(P_, 0.0);

    nodes_.reserve(V_);
    for (std::size_t v = 0; v < V_; ++v) {
      auto node = std::make_unique<VNode>();
      node->chain = std::make_unique<chain::Blockchain>(genesis_);
      node->commits =
          std::make_unique<commit::CommitPipeline>(commit_pool_.get());
      node->commits->set_settle_observer(measured_observer());
      core::PipelineConfig plcfg;
      plcfg.workers = config_.validator_workers;
      plcfg.engine = config_.validator_engine;
      // Degraded mode (no commit pool) validates roots inline at push time,
      // so a Byzantine root yields "no votable sibling" immediately instead
      // of a settle-time cascade — the silent validator then rides the
      // timeout/re-propose path like any other quorum miss.
      plcfg.commit_pipeline =
          config_.commit_threads > 0 ? node->commits.get() : nullptr;
      if (config_.share_block_seeds) plcfg.seed_directory = &seed_dir_;
      plcfg.analysis_cache = &node->analysis;
      node->session = std::make_unique<core::ChainSession>(plcfg, genesis_);
      VNode* raw = node.get();
      node->session->set_revocation_callback(
          [raw](std::size_t) { ++raw->revocations; });
      nodes_.push_back(std::move(node));
    }

    canon_hash_ = nodes_[0]->chain->genesis_hash();
    hs_.resize(config_.rounds + 1);
    for (std::uint64_t h = 1; h <= config_.rounds; ++h)
      hs_[h].report.height = h;
  }

  ConsensusSimResult run() {
    try_schedule_propose(1, 0);
    while (!queue_.empty() && !violated_) {
      Ev ev = queue_.top();
      queue_.pop();
      switch (ev.kind) {
        case kEvPropose: handle_propose(ev); break;
        case kEvArrival: handle_arrival(ev); break;
        case kEvVoteArrival: handle_vote_arrival(ev); break;
        case kEvVoteCast: handle_vote_cast(ev); break;
        case kEvTimeout: handle_timeout(ev); break;
        case kEvSettle: handle_settle(ev); break;
      }
    }

    // Abandoned speculative commitments (dropped by re-proposals) may still
    // be in flight; drain so the measured latency sum is complete.
    for (const auto& node : nodes_) node->commits->drain();
    proposer_commits_->drain();

    for (std::uint64_t h = 1; h <= config_.rounds; ++h)
      result_.rounds.push_back(hs_[h].report);
    result_.bytes_gossiped = network_.bytes_sent();
    const FaultStats& fs = network_.fault_stats();
    result_.messages_dropped = fs.dropped;
    result_.messages_duplicated = fs.duplicated;
    result_.messages_reordered = fs.reordered;
    result_.messages_partitioned = fs.partitioned;
    result_.measured_commit_ms =
        static_cast<double>(
            measured_commit_ns_.load(std::memory_order_relaxed)) /
        1e6;
    if (config_.share_block_seeds) {
      const state::BlockSeedDirectory::Stats s = seed_dir_.stats();
      result_.seeds_built = s.seeds_built;
      result_.seeds_adopted = s.seeds_adopted;
    }
    return std::move(result_);
  }

 private:
  void fail(std::string why) {
    result_.safety_held = false;
    result_.violation = std::move(why);
    violated_ = true;
  }

  /// Accumulates every pipeline's measured commit latency — the real
  /// number use_measured_commit_cost feeds back into the settle schedule.
  commit::SettleFn measured_observer() {
    return [this](const commit::CommitResult& r) {
      measured_commit_ns_.fetch_add(
          static_cast<std::uint64_t>(r.commit_ms * 1e6),
          std::memory_order_relaxed);
    };
  }

  /// Expands every resolved network delivery into a typed event.
  /// SimNetwork resolves delivery times at send(), so draining after each
  /// send site keeps the event queue holding the full pending schedule.
  void pump_network() {
    while (auto msg = network_.next_delivery()) {
      if (msg->to < P_) continue;  // proposers neither validate nor vote
      if (msg->payload.empty()) continue;
      const std::size_t v = msg->to - P_;
      switch (msg->payload[0]) {
        case kTagBlock: {
          chain::BlockAnnouncement ann = chain::decode_announcement(
              std::span(msg->payload).subspan(1));
          const std::uint64_t hh = ann.block.header.number;
          if (hh == 0 || hh > config_.rounds) break;
          arena_.push_back(
              {v, {std::move(ann.block), std::move(ann.profile)}});
          push_ev({msg->deliver_time_us, kEvArrival, v, hh, hs_[hh].attempt,
                   0, arena_.size() - 1});
          break;
        }
        case kTagVote: {
          const VoteMsg vm = decode_vote(msg->payload);
          if (vm.height == 0 || vm.height > config_.rounds) break;
          vote_arena_.push_back(vm);
          // The event carries the SENDER's attempt: a vote for a revoked
          // attempt stales out on its own.
          push_ev({msg->deliver_time_us, kEvVoteArrival, v, vm.height,
                   vm.attempt, 0, vote_arena_.size() - 1});
          break;
        }
        default:
          BP_ASSERT_MSG(false, "unknown gossip tag");
      }
    }
  }

  void push_ev(Ev ev) {
    ev.seq = seq_++;
    queue_.push(ev);
  }

  /// Requests a proposal for `height` no earlier than `ready_us`; parks it
  /// when the speculation window is full (at most one height can ever be
  /// parked — proposals are requested strictly in height order).
  void try_schedule_propose(std::uint64_t height, std::uint64_t ready_us) {
    if (dead_ || height > config_.rounds) return;
    HeightSim& h = hs_[height];
    if (h.phase != Phase::kIdle) return;
    h.ready_us = ready_us;
    if (height > last_settled_ + config_.speculation_depth + 1) {
      parked_height_ = height;
      parked_ready_us_ = ready_us;
      return;
    }
    push_ev({ready_us, kEvPropose, 0, height, h.attempt, 0, SIZE_MAX});
  }

  void handle_propose(const Ev& ev) {
    HeightSim& h = hs_[ev.height];
    if (dead_ || ev.attempt != h.attempt || h.phase != Phase::kIdle) return;
    result_.makespan_us = std::max(result_.makespan_us, ev.t);
    h.phase = Phase::kProposed;
    h.propose_start_us = ev.t;
    ++h.propose_attempts;
    h.report = RoundReport{};
    h.report.height = ev.height;
    h.report.siblings = ppr_;
    h.report.attempts = h.propose_attempts;
    h.inbox.assign(V_, {});
    h.got.assign(V_, {});
    h.last_arrival.assign(V_, 0);
    h.pushed.assign(V_, 0);
    h.node_vote.assign(V_, Hash256{});
    h.cast.assign(V_, 0);
    h.recv.assign(V_, std::vector<Hash256>(V_));
    h.decided.assign(V_, 0);
    h.exhausted.assign(V_, 0);
    h.cast_count = h.decided_count = h.exhausted_count = 0;
    h.ann_wire.clear();
    h.ann_hash.clear();
    h.ann_proposer.clear();
    h.vote_hash = Hash256{};
    if (h.attempt > 0) result_.reproposed_blocks += ppr_;

    const std::size_t byz = std::min(config_.byzantine_proposers, ppr_);
    for (std::size_t k = 0; k < ppr_; ++k) {
      const NodeId proposer_id = (ev.height * ppr_ + k) % P_;
      txpool::TxPool pool;
      pool.add_all(gen_.next_block());
      core::ProposerConfig pcfg = pcfg_;
      if (pcfg.mode == core::ScheduleMode::kAdaptive)
        pcfg.adaptive_ratio_slot = &adaptive_ratio_[proposer_id];
      core::OccWsiProposer proposer(pcfg);
      core::ProposedBlock blk = proposer.propose(
          nodes_[0]->session->tip(),
          ctx_for(ev.height, Address::from_id(0xFEE000 + proposer_id)), pool,
          workers_);
      if (core::is_block_stm(blk.stats.engine_used))
        ++result_.blocks_stm;
      else
        ++result_.blocks_occ;
      blk.block.header.parent_hash = canon_hash_;
      blk.await_seal();
      if (ev.height == config_.byzantine_height && h.attempt == 0 &&
          k < byz) {
        // Byzantine leader: gossip a block whose sealed root lies.
        // Execution still replays cleanly, so the lie survives until the
        // validators' commitments settle.
        blk.block.header.state_root.bytes[0] ^= 0xA5;
      }
      const std::uint64_t bcast_us =
          ev.t + blk.stats.vtime_makespan / ConsensusSim::kGasPerUs;
      chain::BlockAnnouncement ann;
      ann.block = std::move(blk.block);
      ann.profile = std::move(blk.profile);
      Bytes wire;
      {
        const Bytes enc = chain::encode_announcement(ann);
        wire.reserve(enc.size() + 1);
        wire.push_back(kTagBlock);
        wire.insert(wire.end(), enc.begin(), enc.end());
      }
      // Keep the wire around: vote deadlines re-pull announcements a
      // validator is still missing straight from this store.
      h.ann_hash.push_back(ann.block.header.hash());
      h.ann_proposer.push_back(proposer_id);
      h.ann_wire.push_back(wire);
      network_.broadcast(proposer_id, bcast_us, std::move(wire));
    }
    pump_network();

    // Arm the vote deadlines: one backoff chain per validator, anchored at
    // the propose time (Ev::payload carries the retry index).
    for (std::size_t v = 0; v < V_; ++v)
      push_ev({ConsensusSim::vote_deadline(ev.t, config_.vote_timeout_us, 0),
               kEvTimeout, v, ev.height, h.attempt, 0, 0});
  }

  void handle_arrival(const Ev& ev) {
    HeightSim& h = hs_[ev.height];
    if (dead_ || ev.attempt != h.attempt || h.phase != Phase::kProposed)
      return;
    result_.makespan_us = std::max(result_.makespan_us, ev.t);
    const std::size_t v = ev.node;
    ArrivalPayload& ap = arena_[ev.payload];
    const Hash256 bh = ap.bundle.block.header.hash();
    // Duplicate deliveries (fault-plan dups, timeout re-pulls) fold away.
    for (const Hash256& seen : h.got[v])
      if (seen == bh) return;
    h.got[v].push_back(bh);
    h.inbox[v].push_back(std::move(ap.bundle));
    h.last_arrival[v] = std::max(h.last_arrival[v], ev.t);
    if (h.inbox[v].size() < h.report.siblings || h.pushed[v]) return;
    h.pushed[v] = 1;

    // Every sibling announcement is in: validate the height speculatively
    // (root checks stay pending on the node's commit pipeline) and vote.
    VNode& node = *nodes_[v];
    const std::uint64_t vt_before = node.session->stats().vtime_makespan;
    const std::size_t first_valid = node.session->push_height(
        std::span(h.inbox[v].data(), h.inbox[v].size()), workers_);
    const std::uint64_t mk =
        node.session->stats().vtime_makespan - vt_before;
    const std::size_t idx = ev.height - 1;  // session height index

    // The vote is the smallest block hash among execution-valid siblings —
    // arrival-order independent, so jittered delivery cannot split honest
    // nodes.
    std::size_t vote_idx = SIZE_MAX;
    for (std::size_t i = 0; i < h.inbox[v].size(); ++i) {
      if (!node.session->outcome(idx, i).valid) continue;
      if (vote_idx == SIZE_MAX ||
          node.session->block_hash(idx, i) <
              node.session->block_hash(idx, vote_idx))
        vote_idx = i;
    }
    if (vote_idx == SIZE_MAX) {
      // No execution-valid sibling (inline commitments expose a Byzantine
      // root at push time): this validator cannot vote.  It stays silent;
      // the height times out, exhausts every retry budget, and re-proposes
      // with fresh leaders instead of asserting.
      return;
    }
    h.node_vote[v] = node.session->block_hash(idx, vote_idx);
    if (vote_idx != first_valid) node.session->choose(idx, vote_idx);
    const auto& voted = node.session->outcome(idx, vote_idx);
    if (voted.commit.valid() && !voted.commit.ready())
      ++h.report.speculative_votes;

    const std::uint64_t done =
        std::max(node.busy_until_us, h.last_arrival[v]) +
        mk / ConsensusSim::kGasPerUs;
    node.busy_until_us = done;
    push_ev({done, kEvVoteCast, v, ev.height, h.attempt, 0, SIZE_MAX});
  }

  /// Folds `voter`'s vote into v's tally (duplicates and nil votes no-op).
  void record_vote(HeightSim& h, std::size_t v, std::size_t voter,
                   const Hash256& hash) {
    if (hash.is_zero()) return;
    if (!h.recv[v][voter].is_zero()) return;
    h.recv[v][voter] = hash;
  }

  /// A validator decides its height once it has cast its own vote and holds
  /// `quorum_` matching votes (its own included).
  void try_decide(HeightSim& h, std::size_t v) {
    if (!h.cast[v] || h.decided[v]) return;
    std::size_t matching = 0;
    for (std::size_t w = 0; w < V_; ++w)
      if (!h.recv[v][w].is_zero() && h.recv[v][w] == h.node_vote[v])
        ++matching;
    if (matching < quorum_) return;
    h.decided[v] = 1;
    ++h.decided_count;
  }

  void handle_vote_cast(const Ev& ev) {
    HeightSim& h = hs_[ev.height];
    if (dead_ || ev.attempt != h.attempt || h.phase != Phase::kProposed)
      return;
    result_.makespan_us = std::max(result_.makespan_us, ev.t);
    const std::size_t v = ev.node;
    if (h.cast[v]) return;
    h.cast[v] = 1;
    ++h.cast_count;
    record_vote(h, v, v, h.node_vote[v]);
    // The vote is a real gossip message: it rides the same faulty links as
    // the block announcements it endorses.
    network_.broadcast(P_ + v, ev.t,
                       encode_vote({v, ev.height, h.attempt, h.node_vote[v]}));
    pump_network();
    try_decide(h, v);
    check_vote_complete(ev.height, ev.t);
  }

  void handle_vote_arrival(const Ev& ev) {
    HeightSim& h = hs_[ev.height];
    if (dead_ || ev.attempt != h.attempt || h.phase != Phase::kProposed)
      return;
    result_.makespan_us = std::max(result_.makespan_us, ev.t);
    const VoteMsg& vm = vote_arena_[ev.payload];
    record_vote(h, ev.node, vm.voter, vm.hash);
    try_decide(h, ev.node);
    check_vote_complete(ev.height, ev.t);
  }

  /// The vote phase completes chain-wide when every validator has cast AND
  /// decided.  Quorum already tolerates lost vote *messages* (each node
  /// needs only quorum_ of V_) — the all-decided barrier is what lets the
  /// harness settle the replicas in lock-step.
  void check_vote_complete(std::uint64_t height, std::uint64_t t) {
    HeightSim& h = hs_[height];
    if (h.cast_count < V_ || h.decided_count < V_) return;
    complete_vote(height, t);
  }

  void complete_vote(std::uint64_t height, std::uint64_t t) {
    HeightSim& h = hs_[height];
    const std::size_t idx = height - 1;

    // ---- consensus: the quorum hash must be one value chain-wide ----
    // (Validators are honest; quorum absorbs lost messages, never split
    // votes — a split here is a safety violation.)
    const Hash256 first = h.node_vote[0];
    for (const Hash256& vote : h.node_vote) {
      if (vote.is_zero() || !(vote == first)) {
        fail("validators voted for different blocks at height " +
             std::to_string(height));
        return;
      }
    }
    h.phase = Phase::kVoted;
    h.vote_done_us = t;
    h.vote_hash = first;
    canon_hash_ = first;
    h.report.round_latency_us = t - h.propose_start_us;
    result_.speculative_votes += h.report.speculative_votes;

    // The quorum is the network layer's licence to settle: record it on
    // every replica before any settle event may fire.
    for (std::size_t v = 0; v < V_; ++v)
      nodes_[v]->session->mark_quorum(idx);

    // Virtual commitment: every sibling root must fold before the height
    // can settle.  Commitment work of distinct heights overlaps on the
    // commit pool, so each height's cost is charged from its own vote;
    // settle events still fire in height order (the pipeline is FIFO).
    std::uint64_t cost_us = 0;
    if (config_.commit_threads > 0) {
      if (config_.use_measured_commit_cost) {
        // Feed the *measured* pipeline latency of validator 0's siblings
        // back into the schedule (blocks on the handles; wall-clock, so
        // this mode trades bit-stability for realism).
        double ms = 0.0;
        for (std::size_t i = 0; i < h.inbox[0].size(); ++i) {
          const auto& o = nodes_[0]->session->outcome(idx, i);
          if (o.commit.valid()) ms += o.commit.get().commit_ms;
        }
        cost_us = static_cast<std::uint64_t>(ms * 1000.0);
      } else {
        std::uint64_t gas = 0;
        for (const core::BlockBundle& b : h.inbox[0])
          gas += b.block.header.gas_used;
        cost_us = gas / std::max<std::uint64_t>(1, config_.commit_gas_per_us);
      }
    }
    h.commit_cost_us = cost_us;
    const std::uint64_t settle_at =
        std::max(t + h.commit_cost_us, last_settle_sched_us_);
    last_settle_sched_us_ = settle_at;
    push_ev({settle_at, kEvSettle, 0, height, h.attempt, 0, SIZE_MAX});

    try_schedule_propose(height + 1, t);
  }

  void handle_timeout(const Ev& ev) {
    HeightSim& h = hs_[ev.height];
    if (dead_ || ev.attempt != h.attempt || h.phase != Phase::kProposed)
      return;
    result_.makespan_us = std::max(result_.makespan_us, ev.t);
    const std::size_t v = ev.node;
    const std::size_t retry = ev.payload;
    ++result_.vote_timeouts;
    if (retry >= config_.vote_retry_budget) {
      // Budget burned.  The height re-proposes only when EVERY validator
      // has given up — a straggler with retries left may still pull the
      // height through.
      if (!h.exhausted[v]) {
        h.exhausted[v] = 1;
        if (++h.exhausted_count == V_) repropose_height(ev.height, ev.t);
      }
      return;
    }
    if (h.cast[v]) {
      // Rebroadcast the vote.  A validator keeps doing this past its own
      // local decision (until the height completes chain-wide): after a
      // heal it is these rebroadcasts that refill a straggler's tally.
      network_.broadcast(
          P_ + v, ev.t,
          encode_vote({v, ev.height, h.attempt, h.node_vote[v]}));
      ++result_.vote_retransmits;
    } else {
      // Still missing announcements: pull them again from their proposers.
      for (std::size_t k = 0; k < h.ann_wire.size(); ++k) {
        bool have = false;
        for (const Hash256& seen : h.got[v])
          if (seen == h.ann_hash[k]) { have = true; break; }
        if (have) continue;
        network_.send(h.ann_proposer[k], P_ + v, ev.t, h.ann_wire[k]);
        ++result_.vote_retransmits;
      }
    }
    pump_network();
    push_ev({ConsensusSim::vote_deadline(h.propose_start_us,
                                         config_.vote_timeout_us, retry + 1),
             kEvTimeout, v, ev.height, h.attempt, 0, retry + 1});
  }

  /// Quorum never formed within the retry budget: discard the attempt and
  /// re-propose with fresh leaders, or — when the proposal budget is also
  /// burned — declare liveness lost.  Safety is never at stake here:
  /// nothing at this height settled, and nothing past it was proposed.
  void repropose_height(std::uint64_t height, std::uint64_t t) {
    HeightSim& h = hs_[height];
    const std::size_t idx = height - 1;
    // Unwind the speculative session records.  Pending commit handles are
    // simply dropped; the pipelines publish and drain abandoned
    // submissions on their own.
    for (std::size_t v = 0; v < V_; ++v)
      if (h.pushed[v]) nodes_[v]->session->drop_unsettled(idx);
    if (h.propose_attempts >= config_.max_propose_attempts) {
      ++result_.quorum_failures;
      // Park the height for good: stale every in-flight event and stop.
      // Earlier voted heights still settle; nothing deeper was proposed.
      ++h.attempt;
      h.phase = Phase::kIdle;
      return;
    }
    ++result_.quorum_reproposals;
    reset_height(h, height);
    push_ev({t, kEvPropose, 0, height, h.attempt, 0, SIZE_MAX});
  }

  /// Returns a height to kIdle for a fresh attempt: stales every in-flight
  /// event via the attempt counter and wipes the per-attempt scoreboard.
  /// propose_attempts (the liveness budget) and ready_us survive.
  void reset_height(HeightSim& s, std::uint64_t hh) {
    ++s.attempt;
    s.phase = Phase::kIdle;
    s.inbox.clear();
    s.got.clear();
    s.last_arrival.clear();
    s.pushed.clear();
    s.node_vote.clear();
    s.cast.clear();
    s.recv.clear();
    s.decided.clear();
    s.exhausted.clear();
    s.cast_count = s.decided_count = s.exhausted_count = 0;
    s.ann_wire.clear();
    s.ann_hash.clear();
    s.ann_proposer.clear();
    s.report = RoundReport{};
    s.report.height = hh;
  }

  void handle_settle(const Ev& ev) {
    HeightSim& h = hs_[ev.height];
    if (dead_ || ev.attempt != h.attempt || h.phase != Phase::kVoted) return;
    result_.makespan_us = std::max(result_.makespan_us, ev.t);
    const std::size_t idx = ev.height - 1;

    bool ok0 = false;
    for (std::size_t v = 0; v < V_; ++v) {
      core::ChainSession& session = *nodes_[v]->session;
      // Settlement is licensed by the recorded quorum: a height with lost
      // votes parks in kProposed and never schedules this event, so a
      // session without the flag here is a harness bug, not bad luck.
      if (!session.can_settle() || !session.has_quorum(idx)) {
        fail("settlement without quorum at height " +
             std::to_string(ev.height));
        return;
      }
      const bool ok = session.settle_next();
      if (v == 0) {
        ok0 = ok;
      } else if (ok != ok0) {
        fail("validators disagree on settlement at height " +
             std::to_string(ev.height));
        return;
      }
    }
    if (ok0) {
      finalize_height(h, idx, ev.t);
      if (violated_) return;
      last_settled_ = ev.height;
      unpark(ev.t);
      return;
    }

    // ---- the voted block failed its root check: revoke and fork ----
    result_.revoked_votes += V_;
    std::vector<std::size_t> survivor(V_, SIZE_MAX);
    survivor[0] = nodes_[0]->session->fork_choice(idx);
    const bool any = survivor[0] != SIZE_MAX;
    const Hash256 surv_hash =
        any ? nodes_[0]->session->block_hash(idx, survivor[0]) : Hash256{};
    for (std::size_t v = 1; v < V_; ++v) {
      survivor[v] = nodes_[v]->session->fork_choice(idx);
      const bool mine = survivor[v] != SIZE_MAX;
      if (mine != any ||
          (mine &&
           !(nodes_[v]->session->block_hash(idx, survivor[v]) == surv_hash))) {
        fail("validators disagree on fork choice at height " +
             std::to_string(ev.height));
        return;
      }
    }

    if (!any) {
      // No sibling survived: the chain dies here (the batch cascade).
      dead_ = true;
      for (std::size_t v = 0; v < V_; ++v)
        nodes_[v]->session->cascade_from(idx);
      for (std::uint64_t hh = ev.height + 1; hh <= config_.rounds; ++hh)
        if (hs_[hh].phase == Phase::kVoted) result_.revoked_votes += V_;
      return;
    }

    // Revoke the speculative suffix built on the loser: stale every
    // in-flight event via the attempt counter, retract its votes, and
    // return each height to kIdle for re-proposal on the survivor.
    ++result_.fork_choices;
    for (std::uint64_t hh = ev.height + 1; hh <= config_.rounds; ++hh) {
      HeightSim& s = hs_[hh];
      if (s.phase == Phase::kIdle) continue;
      if (s.phase == Phase::kVoted) result_.revoked_votes += V_;
      reset_height(s, hh);
    }
    parked_height_ = 0;
    for (std::size_t v = 0; v < V_; ++v)
      nodes_[v]->session->adopt_fork(idx, survivor[v]);

    // The survivor's root already settled clean: the height finalizes on
    // it and the live loop resumes from its state.
    finalize_height(h, idx, ev.t);
    if (violated_) return;
    canon_hash_ = surv_hash;
    h.vote_hash = surv_hash;
    last_settled_ = ev.height;
    last_settle_sched_us_ = ev.t;
    try_schedule_propose(ev.height + 1, ev.t);
  }

  /// Shared settle-success tail: replica root agreement, canonical-first
  /// ledger commits on every node, and the round report.  The canonical
  /// sibling is whatever each session currently points at (the vote, or
  /// the fork-choice survivor after adopt_fork()).
  void finalize_height(HeightSim& h, std::size_t idx, std::uint64_t t) {
    const std::size_t c0 = nodes_[0]->session->canonical(idx);
    const Hash256 root0 =
        nodes_[0]->session->outcome(idx, c0).exec.state_root;
    for (std::size_t v = 0; v < V_; ++v) {
      VNode& node = *nodes_[v];
      const std::size_t c = node.session->canonical(idx);
      const auto& co = node.session->outcome(idx, c);
      if (!(co.exec.state_root == root0)) {
        fail("replica state divergence at height " +
             std::to_string(h.report.height));
        return;
      }
      // Canonical first so every replica's head extends identically; the
      // remaining valid siblings land as side-chain uncles.
      node.chain->commit_block(h.inbox[v][c].block, co.exec.post_state);
      std::size_t valid = 1;
      for (std::size_t i = 0; i < h.inbox[v].size(); ++i) {
        if (i == c || !node.session->outcome(idx, i).valid) continue;
        ++valid;
        node.chain->commit_block(h.inbox[v][i].block,
                                 node.session->outcome(idx, i).exec.post_state);
      }
      if (v == 0) {
        h.report.valid_siblings = valid;
        h.report.uncles = valid - 1;
        h.report.txs = h.inbox[v][c].block.transactions.size();
      }
    }
    h.phase = Phase::kSettled;
    h.report.settled = true;
    h.report.canonical_root = root0;
    h.report.settle_latency_us = t - h.ready_us;
    result_.settled_height = h.report.height;
    result_.total_txs += h.report.txs;
    result_.total_uncles += h.report.uncles;
  }

  /// Releases the parked proposal once the speculation window has room;
  /// the time it sat parked is the settle stall speculation failed to hide.
  void unpark(std::uint64_t now_us) {
    if (parked_height_ == 0 ||
        parked_height_ > last_settled_ + config_.speculation_depth + 1)
      return;
    const std::uint64_t at = std::max(now_us, parked_ready_us_);
    result_.settle_stall_us += at - parked_ready_us_;
    push_ev({at, kEvPropose, 0, parked_height_,
             hs_[parked_height_].attempt, 0, SIZE_MAX});
    parked_height_ = 0;
  }

  const ConsensusSimConfig& config_;
  const std::size_t P_;
  const std::size_t V_;
  const std::size_t ppr_;
  const std::size_t quorum_;
  workload::WorkloadGenerator gen_;
  const state::WorldState genesis_;
  SimNetwork network_;
  ThreadPool workers_;
  // Declared before the pipelines that feed it: observer callbacks run on
  // pool threads until each pipeline's destructor drains.
  std::atomic<std::uint64_t> measured_commit_ns_{0};
  std::unique_ptr<ThreadPool> commit_pool_;
  std::unique_ptr<commit::CommitPipeline> proposer_commits_;
  state::BlockSeedDirectory seed_dir_;
  evm::CodeAnalysisCache proposer_analysis_;
  core::ProposerConfig pcfg_;
  // Per-proposer conflict-ratio memory for ScheduleMode::kAdaptive (engines
  // are rebuilt each proposal; the signal must outlive them).
  std::vector<double> adaptive_ratio_;
  std::vector<std::unique_ptr<VNode>> nodes_;
  std::vector<HeightSim> hs_;
  std::priority_queue<Ev, std::vector<Ev>, EvLater> queue_;
  std::vector<ArrivalPayload> arena_;
  std::vector<VoteMsg> vote_arena_;
  std::uint64_t seq_ = 0;
  Hash256 canon_hash_;
  std::uint64_t last_settled_ = 0;
  std::uint64_t last_settle_sched_us_ = 0;
  std::uint64_t parked_height_ = 0;  // 0 = nothing parked
  std::uint64_t parked_ready_us_ = 0;
  bool dead_ = false;
  bool violated_ = false;
  ConsensusSimResult result_;
};

/// One validator's view of one round in the batch reference, parked until
/// the settle pass.
struct PendingValidation {
  std::vector<core::BlockBundle> bundles;         // this node's arrival order
  std::vector<core::ValidationOutcome> outcomes;  // parallel to bundles
  Hash256 vote;                // provisional vote (zero = no valid sibling)
  std::size_t vote_idx = SIZE_MAX;
};

struct PendingRound {
  RoundReport report;
  Hash256 canonical_hash;
  std::uint64_t ready_us = 0;     // round start (previous vote)
  std::uint64_t vote_end_us = 0;  // slowest validator's vote
  std::uint64_t commit_cost_us = 0;
  std::vector<PendingValidation> per_validator;
};

/// Batch-reference validator node (no ChainSession: the round driver owns
/// the chain view).
struct BatchValidatorNode {
  BatchValidatorNode(const state::WorldState& genesis, ThreadPool* commit_pool)
      : chain(genesis), commits(commit_pool) {
    tip = chain.head_state();
  }

  chain::Blockchain chain;
  commit::CommitPipeline commits;
  std::shared_ptr<const state::WorldState> tip;
  evm::CodeAnalysisCache analysis;  // per-node bytecode cache
  std::uint64_t busy_until_us = 0;  // virtual time this node frees up
};

}  // namespace

ConsensusSim::ConsensusSim(ConsensusSimConfig config)
    : config_(std::move(config)) {
  BP_ASSERT(config_.proposer_nodes >= 1);
  BP_ASSERT(config_.validator_nodes >= 1);
  BP_ASSERT(config_.proposers_per_round >= 1);
  BP_ASSERT(config_.proposers_per_round <= config_.proposer_nodes);
  BP_ASSERT(config_.rounds >= 1);
  BP_ASSERT(config_.validator_nodes <= 255);
  BP_ASSERT(config_.vote_timeout_us >= 1);
  BP_ASSERT(config_.max_propose_attempts >= 1);
}

ConsensusSimResult ConsensusSim::run() {
  EventDriver driver(config_);
  return driver.run();
}

ConsensusSimResult ConsensusSim::run_batch_reference() {
  ConsensusSimResult result;
  workload::WorkloadGenerator gen(config_.workload);
  const state::WorldState genesis = gen.genesis();

  // Node ids: [0, P) proposers, [P, P+V) validators.
  const std::size_t P = config_.proposer_nodes;
  const std::size_t V = config_.validator_nodes;
  SimNetwork network(P + V, config_.link);

  ThreadPool workers(4);
  std::unique_ptr<ThreadPool> commit_pool;
  if (config_.commit_threads > 0)
    commit_pool = std::make_unique<ThreadPool>(config_.commit_threads);
  commit::CommitPipeline proposer_commits(commit_pool.get());

  std::vector<std::unique_ptr<BatchValidatorNode>> validators;
  validators.reserve(V);
  for (std::size_t v = 0; v < V; ++v)
    validators.push_back(
        std::make_unique<BatchValidatorNode>(genesis, commit_pool.get()));

  evm::CodeAnalysisCache proposer_analysis;
  core::ProposerConfig pcfg;
  pcfg.threads = config_.proposer_threads;
  pcfg.mode = config_.proposer_mode;
  pcfg.commit_pipeline = &proposer_commits;
  pcfg.analysis_cache = &proposer_analysis;
  core::PipelineConfig plcfg;
  plcfg.workers = config_.validator_workers;
  plcfg.engine = config_.validator_engine;
  // Per-proposer conflict-ratio memory for ScheduleMode::kAdaptive (a fresh
  // engine is built per proposal, so the signal lives here).
  std::vector<double> adaptive_ratio(P, 0.0);

  auto canonical_state = std::make_shared<const state::WorldState>(genesis);
  Hash256 canonical_head_hash = validators[0]->chain.genesis_hash();
  std::uint64_t clock_us = 0;  // global round clock (virtual)
  std::vector<PendingRound> pending;

  for (std::uint64_t height = 1; height <= config_.rounds; ++height) {
    PendingRound pr;
    RoundReport& report = pr.report;
    report.height = height;
    pr.ready_us = clock_us;

    // ---- propose: round-robin leader set over the proposer nodes ----
    // Sealing is routed through the proposer commit pipeline; await_seal()
    // closes the future before broadcast (an unsealed root cannot gossip).
    std::uint64_t propose_end_us = clock_us;
    const std::size_t byz =
        std::min(config_.byzantine_proposers, config_.proposers_per_round);
    for (std::size_t k = 0; k < config_.proposers_per_round; ++k) {
      const NodeId proposer_id =
          (height * config_.proposers_per_round + k) % P;
      txpool::TxPool pool;
      pool.add_all(gen.next_block());
      core::ProposerConfig cfg = pcfg;
      if (cfg.mode == core::ScheduleMode::kAdaptive)
        cfg.adaptive_ratio_slot = &adaptive_ratio[proposer_id];
      core::OccWsiProposer proposer(cfg);
      core::ProposedBlock blk = proposer.propose(
          *canonical_state,
          ctx_for(height, Address::from_id(0xFEE000 + proposer_id)), pool,
          workers);
      if (core::is_block_stm(blk.stats.engine_used))
        ++result.blocks_stm;
      else
        ++result.blocks_occ;
      blk.block.header.parent_hash = canonical_head_hash;
      blk.await_seal();
      if (height == config_.byzantine_height && k < byz) {
        // Byzantine proposer set: gossip a block whose sealed root lies.
        // Execution still replays cleanly, so the lie survives until the
        // validators' commitments settle.
        blk.block.header.state_root.bytes[0] ^= 0xA5;
      }
      pr.commit_cost_us +=
          config_.commit_threads > 0
              ? blk.block.header.gas_used /
                    std::max<std::uint64_t>(1, config_.commit_gas_per_us)
              : 0;
      propose_end_us = std::max(
          propose_end_us, clock_us + blk.stats.vtime_makespan / kGasPerUs);

      chain::BlockAnnouncement ann;
      ann.block = std::move(blk.block);
      ann.profile = std::move(blk.profile);
      network.broadcast(proposer_id, propose_end_us,
                        chain::encode_announcement(ann));
    }
    report.siblings = config_.proposers_per_round;

    // ---- disseminate: drain this round's gossip ----
    // Per validator: arrival time of its LAST sibling announcement (a
    // validator can only finish the round once it has seen every fork).
    std::map<NodeId, std::uint64_t> last_arrival;
    std::map<NodeId, std::vector<core::BlockBundle>> inbox;
    while (auto msg = network.next_delivery()) {
      if (msg->to < P) continue;  // proposers ignore sibling gossip here
      const chain::BlockAnnouncement ann =
          chain::decode_announcement(std::span(msg->payload));
      inbox[msg->to].push_back({ann.block, ann.profile});
      last_arrival[msg->to] =
          std::max(last_arrival[msg->to], msg->deliver_time_us);
    }

    // ---- validate speculatively: root checks stay on the pipelines ----
    std::uint64_t round_end_us = propose_end_us;
    pr.per_validator.resize(V);

    for (std::size_t v = 0; v < V; ++v) {
      const NodeId vid = P + v;
      auto& node = *validators[v];
      PendingValidation& pv = pr.per_validator[v];
      pv.bundles = std::move(inbox[vid]);
      BP_ASSERT_MSG(pv.bundles.size() == report.siblings,
                    "gossip lost an announcement");

      plcfg.commit_pipeline = &node.commits;
      plcfg.analysis_cache = &node.analysis;
      core::ValidatorPipeline pipeline(plcfg);
      core::PipelineResult piped = pipeline.process_height_speculative(
          *node.tip, std::span(pv.bundles.data(), pv.bundles.size()),
          workers);

      // Provisional vote: first execution-valid sibling in arrival order.
      // The voted block's root check may still be in flight — that is the
      // speculative tip the next round builds on.
      for (std::size_t i = 0; i < piped.outcomes.size(); ++i) {
        if (piped.outcomes[i].valid) {
          pv.vote = pv.bundles[i].block.header.hash();
          pv.vote_idx = i;
          break;
        }
      }
      if (pv.vote_idx != SIZE_MAX) {
        const auto& voted = piped.outcomes[pv.vote_idx];
        if (voted.commit.valid() && !voted.commit.ready())
          ++report.speculative_votes;
        node.tip = voted.exec.post_state;
      }
      pv.outcomes = std::move(piped.outcomes);

      const std::uint64_t node_end =
          std::max(node.busy_until_us, last_arrival[vid]) +
          piped.stats.vtime_makespan / kGasPerUs;
      node.busy_until_us = node_end;
      round_end_us = std::max(round_end_us, node_end);
    }
    result.speculative_votes += report.speculative_votes;

    // ---- consensus: provisional votes must be unanimous ----
    pr.canonical_hash = pr.per_validator.front().vote;
    for (const PendingValidation& pv : pr.per_validator) {
      if (pv.vote.is_zero()) {
        result.safety_held = false;
        result.violation =
            "no valid block at height " + std::to_string(height);
        return result;
      }
      if (!(pv.vote == pr.canonical_hash)) {
        result.safety_held = false;
        result.violation = "validators voted for different blocks at height " +
                           std::to_string(height);
        return result;
      }
    }

    canonical_state = pr.per_validator[0].outcomes[pr.per_validator[0].vote_idx]
                          .exec.post_state;
    canonical_head_hash = pr.canonical_hash;
    report.round_latency_us = round_end_us - clock_us;
    pr.vote_end_us = round_end_us;
    clock_us = round_end_us;
    pending.push_back(std::move(pr));
  }

  // ---- settle: await pending roots height by height ----
  // A root mismatch on a round's canonical block revokes that round's votes
  // and cascades to every descendant round — their executions consumed a
  // state that was never committed — truncating the settled chain there.
  // Virtual settle time: commitments run from each round's vote on the
  // commit pool, but the post-hoc pass only observes them after the last
  // round, in height order — the baseline the live loop's interleaved
  // settlement beats.
  bool chain_ok = true;
  std::uint64_t settle_clock_us = clock_us;
  for (PendingRound& pr : pending) {
    RoundReport& report = pr.report;

    if (!chain_ok) {
      // Cascade: the parent round was revoked, so every vote here is too.
      for (PendingValidation& pv : pr.per_validator) {
        for (core::ValidationOutcome& o : pv.outcomes) {
          if (o.valid) {
            o.valid = false;
            o.reject_reason = "parent block failed commitment";
          }
        }
      }
      result.revoked_votes += V;
      result.rounds.push_back(report);
      continue;
    }

    settle_clock_us =
        std::max(settle_clock_us, pr.vote_end_us + pr.commit_cost_us);
    std::size_t revoked = 0;
    for (PendingValidation& pv : pr.per_validator) {
      for (core::ValidationOutcome& o : pv.outcomes) o.await_commit();
      if (!pv.outcomes[pv.vote_idx].valid) ++revoked;
    }
    // Deterministic replay means settlement is unanimous; anything else is
    // a replica divergence.
    if (revoked != 0 && revoked != V) {
      result.safety_held = false;
      result.violation = "validators disagree on settlement at height " +
                         std::to_string(report.height);
      return result;
    }
    if (revoked == V) {
      chain_ok = false;
      result.revoked_votes += V;
      result.rounds.push_back(report);
      continue;
    }

    // The round settled: ledgers advance, replicas must agree on the root.
    const Hash256 root0 =
        pr.per_validator[0].outcomes[pr.per_validator[0].vote_idx]
            .exec.state_root;
    std::size_t valid = 0;
    for (std::size_t v = 0; v < V; ++v) {
      PendingValidation& pv = pr.per_validator[v];
      if (!(pv.outcomes[pv.vote_idx].exec.state_root == root0)) {
        result.safety_held = false;
        result.violation = "replica state divergence at height " +
                           std::to_string(report.height);
        return result;
      }
      std::size_t node_valid = 0;
      for (std::size_t i = 0; i < pv.outcomes.size(); ++i) {
        if (!pv.outcomes[i].valid) continue;
        ++node_valid;
        validators[v]->chain.commit_block(pv.bundles[i].block,
                                          pv.outcomes[i].exec.post_state);
        if (v == 0 && pv.bundles[i].block.header.hash() == pr.canonical_hash)
          report.txs += pv.bundles[i].block.transactions.size();
      }
      if (v == 0) valid = node_valid;
    }
    report.settled = true;
    report.canonical_root = root0;
    report.valid_siblings = valid;
    report.uncles = valid > 0 ? valid - 1 : 0;
    report.settle_latency_us = settle_clock_us - pr.ready_us;
    result.settled_height = report.height;
    result.total_txs += report.txs;
    result.total_uncles += report.uncles;
    result.rounds.push_back(report);
  }

  result.makespan_us = std::max(clock_us, settle_clock_us);
  result.settle_stall_us = result.makespan_us - clock_us;
  result.bytes_gossiped = network.bytes_sent();
  return result;
}

}  // namespace blockpilot::net
