// ConsensusSim: a round-based proposer/validator network simulation —
// the full DiCE loop (Dissemination, Consensus, Execution) of §3.2 with
// BlockPilot engines inside every node.
//
// Per round (block height):
//  1. `proposers_per_round` proposer nodes each draw a pending batch and
//     produce a block with the parallel OCC-WSI engine (forks when > 1);
//  2. each announcement (block + profile, RLP-encoded) is broadcast over
//     the simulated gossip network;
//  3. every validator node receives all sibling announcements, decodes
//     them, and validates them concurrently through its pipeline;
//  4. validators vote for the first valid sibling (by arrival order); the
//     majority block becomes canonical, the rest are uncles (§3.4);
//  5. all nodes advance their local chains to the canonical head.
//
// The simulation asserts consensus safety at every height: all honest
// validators must agree on the canonical state root.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/codec.hpp"
#include "core/pipeline.hpp"
#include "core/proposer.hpp"
#include "net/network.hpp"
#include "workload/generator.hpp"

namespace blockpilot::net {

struct ConsensusSimConfig {
  std::size_t proposer_nodes = 3;
  std::size_t validator_nodes = 5;
  /// How many proposers actually fire each round (>1 creates forks).
  std::size_t proposers_per_round = 2;
  std::uint64_t rounds = 5;

  std::size_t proposer_threads = 8;
  std::size_t validator_workers = 16;
  workload::WorkloadConfig workload = workload::preset_mainnet();
  LinkModel link;
};

struct RoundReport {
  std::uint64_t height = 0;
  std::size_t siblings = 0;
  std::size_t valid_siblings = 0;
  std::size_t uncles = 0;
  Hash256 canonical_root;
  std::uint64_t txs = 0;
  /// End-to-end virtual latency: propose + gossip + slowest validator's
  /// pipeline, in microseconds (gas converted via gas_per_us).
  std::uint64_t round_latency_us = 0;
};

struct ConsensusSimResult {
  std::vector<RoundReport> rounds;
  std::uint64_t total_txs = 0;
  std::uint64_t total_uncles = 0;
  std::uint64_t bytes_gossiped = 0;
  bool safety_held = true;      // all validators agreed every round
  std::string violation;        // populated when safety_held == false

  double avg_round_latency_ms() const noexcept {
    if (rounds.empty()) return 0.0;
    std::uint64_t sum = 0;
    for (const auto& r : rounds) sum += r.round_latency_us;
    return static_cast<double>(sum) / static_cast<double>(rounds.size()) /
           1000.0;
  }
};

class ConsensusSim {
 public:
  explicit ConsensusSim(ConsensusSimConfig config);

  /// Runs the configured number of rounds and returns the report.
  ConsensusSimResult run();

  /// Gas-to-time conversion for latency reporting: EVM gas throughput of
  /// one core (mainnet-ish ~30 Mgas/s -> 30 gas/us).
  static constexpr std::uint64_t kGasPerUs = 30;

 private:
  ConsensusSimConfig config_;
};

}  // namespace blockpilot::net
