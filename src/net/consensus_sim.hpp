// ConsensusSim: a round-based proposer/validator network simulation —
// the full DiCE loop (Dissemination, Consensus, Execution) of §3.2 with
// BlockPilot engines inside every node, routed end to end through the
// asynchronous commitment subsystem.
//
// Per round (block height):
//  1. `proposers_per_round` proposer nodes each draw a pending batch and
//     produce a block with the parallel OCC-WSI engine (forks when > 1);
//     header sealing awaits the proposer-side CommitPipeline future before
//     the block is broadcast (a block cannot gossip an unsealed root);
//  2. each announcement (block + profile, RLP-encoded) is broadcast over
//     the simulated gossip network;
//  3. every validator node receives all sibling announcements, decodes
//     them, and validates them *speculatively* through its pipeline: the
//     root check stays pending on the validator's CommitPipeline while the
//     next round already executes on top of the chosen tip;
//  4. validators cast a provisional vote for the first execution-valid
//     sibling (by arrival order); the vote is over a speculative tip — it
//     asserts "this block re-executed cleanly", not yet "its root matched";
//  5. all nodes advance their speculative tip to the voted block's post
//     state and the next round begins without waiting for any root.
//
// After the last round a settle pass walks the heights in order, awaits
// every pending commitment, and finalizes votes: a late root mismatch on a
// round's canonical block revokes that round's votes and cascades the
// revocation to every descendant round (their executions consumed a state
// that was never committed), truncating the settled chain — the §5.2
// overlap window closing at the ledger.  Blocks are committed to the node
// ledgers only as their rounds settle.
//
// The simulation asserts consensus safety at every height: all honest
// validators must agree on the provisional vote, on settlement, and on the
// canonical state root.  A Byzantine proposer (see
// ConsensusSimConfig::byzantine_height) tampers with sealed roots; safety
// holds as long as the honest validators *agree* on detecting and revoking
// it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/codec.hpp"
#include "commit/commit_pipeline.hpp"
#include "core/pipeline.hpp"
#include "core/proposer.hpp"
#include "net/network.hpp"
#include "workload/generator.hpp"

namespace blockpilot::net {

struct ConsensusSimConfig {
  std::size_t proposer_nodes = 3;
  std::size_t validator_nodes = 5;
  /// How many proposers actually fire each round (>1 creates forks).
  std::size_t proposers_per_round = 2;
  std::uint64_t rounds = 5;

  std::size_t proposer_threads = 8;
  std::size_t validator_workers = 16;
  /// Size of the shared commitment pool backing every node's
  /// CommitPipeline.  0 runs every pipeline inline (degraded mode: sealing
  /// and root checks happen synchronously; votes are never speculative).
  std::size_t commit_threads = 2;
  /// When nonzero, every proposer at this height broadcasts a block whose
  /// sealed state root was tampered with — the mismatch is only discovered
  /// when the validators' commitments settle, exercising the cascading
  /// vote-revocation path.  0 = all-honest run.
  std::uint64_t byzantine_height = 0;
  workload::WorkloadConfig workload = workload::preset_mainnet();
  LinkModel link;
};

struct RoundReport {
  std::uint64_t height = 0;
  std::size_t siblings = 0;
  std::size_t valid_siblings = 0;  // post-settle validity (validator 0)
  std::size_t uncles = 0;
  /// Votes cast while the voted block's root check was still in flight.
  std::size_t speculative_votes = 0;
  /// False when the round's canonical block failed settlement (its own
  /// root mismatched, or a parent round's did and the failure cascaded).
  bool settled = false;
  Hash256 canonical_root;  // zero when the round did not settle
  std::uint64_t txs = 0;   // canonical txs; 0 when revoked
  /// End-to-end virtual latency: propose + gossip + slowest validator's
  /// pipeline, in microseconds (gas converted via gas_per_us).  Measured
  /// over the speculative round — settle latency is what the overlap
  /// hides, so it is deliberately not part of this number.
  std::uint64_t round_latency_us = 0;
};

struct ConsensusSimResult {
  std::vector<RoundReport> rounds;
  std::uint64_t total_txs = 0;       // settled rounds only
  std::uint64_t total_uncles = 0;
  std::uint64_t bytes_gossiped = 0;
  /// Provisional votes cast on speculative (pre-settle) tips, summed over
  /// rounds and validators.
  std::uint64_t speculative_votes = 0;
  /// Votes revoked by the settle pass (root mismatch + cascades).
  std::uint64_t revoked_votes = 0;
  /// Highest height whose canonical block settled (0 = none did).
  std::uint64_t settled_height = 0;
  bool safety_held = true;  // all validators agreed every round + at settle
  std::string violation;    // populated when safety_held == false

  double avg_round_latency_ms() const noexcept {
    if (rounds.empty()) return 0.0;
    std::uint64_t sum = 0;
    for (const auto& r : rounds) sum += r.round_latency_us;
    return static_cast<double>(sum) / static_cast<double>(rounds.size()) /
           1000.0;
  }
};

class ConsensusSim {
 public:
  explicit ConsensusSim(ConsensusSimConfig config);

  /// Runs the configured number of rounds plus the settle pass and returns
  /// the report.
  ConsensusSimResult run();

  /// Gas-to-time conversion for latency reporting: EVM gas throughput of
  /// one core (mainnet-ish ~30 Mgas/s -> 30 gas/us).
  static constexpr std::uint64_t kGasPerUs = 30;

 private:
  ConsensusSimConfig config_;
};

}  // namespace blockpilot::net
