// ConsensusSim: an event-driven proposer/validator network simulation —
// the full DiCE loop (Dissemination, Consensus, Execution) of §3.2 with
// BlockPilot engines inside every node, routed end to end through the
// asynchronous commitment subsystem.
//
// Each validator node is a live event-driven replica rather than a step in
// a round-batch driver: it owns a chain view (core::ChainSession), reacts
// to block arrivals as they are delivered by the gossip network, validates
// speculatively (root checks pending on its CommitPipeline), votes for the
// smallest block hash among execution-valid siblings, and keeps executing
// ahead of settlement — but never more than `speculation_depth` unsettled
// heights ahead (proposing parks until the oldest height settles; the
// parked time is the settle stall the overlap failed to hide).
//
// Settlement is interleaved with the live loop instead of deferred to a
// post-hoc pass: each voted height schedules a virtual settle event at
// vote time + its commitment cost (serialized in height order).  When a
// settlement reveals a root mismatch on the voted block, the votes at that
// height are revoked and the nodes run *fork-choice* among the surviving
// siblings — those whose settled root matched their own header — adopting
// the survivor with the smallest block hash, truncating the speculative
// suffix built on the loser, and re-proposing from the survivor's state.
// Only when no sibling survives does the chain die (the old cascade),
// which is exactly what happens when every proposer at a height was
// Byzantine.
//
// Voting is f-of-n *quorum collection*, not unanimity: each validator
// broadcasts its vote as a real gossip message (subject to the network's
// fault plan — loss, duplication, reordering, partitions), tallies the
// votes it receives, and decides the height once `quorum_votes` matching
// votes are in (default 2f+1 of n with f = ⌊(n−1)/3⌋).  A per-height vote
// deadline in the deterministic event queue triggers bounded retransmission
// with exponential backoff: a node that voted rebroadcasts its vote, a node
// still missing sibling announcements pulls them again from their
// proposers.  A height whose quorum never forms within the retry budget
// parks and *re-proposes* (fresh honest leaders, bumped attempt) instead of
// asserting; only when the re-proposal budget is also exhausted does the
// simulation declare liveness lost (`quorum_failures`) — never a safety
// violation.
//
// The event queue orders (virtual time, kind, node, seq) with settle <
// block-arrival < vote-arrival < vote < timeout < propose at equal times,
// so a whole multi-node scenario is bit-stable across runs and hosts;
// every event carries the height's attempt counter so revocation makes
// in-flight events of the abandoned suffix stale rather than racing them.
//
// The simulation asserts consensus safety at every height: all honest
// validators must agree on the quorum hash, on settlement, on fork-choice,
// and on the canonical state root — and no height may settle without a
// recorded quorum (ChainSession::mark_quorum).  A Byzantine proposer
// subset (see ConsensusSimConfig::byzantine_height / byzantine_proposers)
// tampers with sealed roots; safety holds as long as the honest validators
// *agree* on detecting, revoking, and (when an honest sibling exists)
// forking around it.
//
// run_batch_reference() retains the pre-refactor round-batch algorithm
// (propose/gossip/vote every height, then one settle pass that cascades
// revocation) both as the depth-0 semantic baseline — a depth-0
// single-proposer event run settles bit-identical canonical roots — and as
// the latency baseline the bench sweeps against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/codec.hpp"
#include "commit/commit_pipeline.hpp"
#include "core/pipeline.hpp"
#include "core/proposer.hpp"
#include "net/network.hpp"
#include "workload/generator.hpp"

namespace blockpilot::net {

struct ConsensusSimConfig {
  std::size_t proposer_nodes = 3;
  std::size_t validator_nodes = 5;
  /// How many proposers actually fire each round (>1 creates forks).
  std::size_t proposers_per_round = 2;
  std::uint64_t rounds = 5;

  std::size_t proposer_threads = 8;
  /// Concurrency-control discipline the leaders propose with
  /// (core::ScheduleMode).  The deterministic differential gates run both
  /// virtual-time families; the host modes additionally need
  /// proposer_threads-sized worker pools.
  core::ScheduleMode proposer_mode = core::ScheduleMode::kVirtualTime;
  /// Replay discipline every validator node re-executes received blocks
  /// with (core::ValidatorEngine): the subgraph-LPT oracle, Block-STM
  /// preset-order replay, or per-block adaptive selection.  Forwarded into
  /// each node's ChainSession pipeline.
  core::ValidatorEngine validator_engine = core::ValidatorEngine::kSubgraphLpt;
  std::size_t validator_workers = 16;
  /// Size of the shared commitment pool backing every node's
  /// CommitPipeline.  0 runs every pipeline inline (degraded mode: sealing
  /// and root checks happen synchronously; votes are never speculative and
  /// virtual settlement is instantaneous).
  std::size_t commit_threads = 2;
  /// Bounded speculation: a height may be proposed only while at most
  /// `speculation_depth` heights past the last settled one are already in
  /// flight.  0 degrades to lock-step (each height waits for the previous
  /// settlement — the batch-equivalent mode); larger windows overlap more
  /// commitment latency with execution (§5.2).
  std::size_t speculation_depth = 8;
  /// When nonzero, proposers at this height broadcast blocks whose sealed
  /// state root was tampered with — the mismatch is only discovered when
  /// the validators' commitments settle, exercising vote revocation.
  /// 0 = all-honest run.
  std::uint64_t byzantine_height = 0;
  /// How many of the height's leaders tamper (clamped to
  /// proposers_per_round).  Leaving honest siblings exercises fork-choice:
  /// the nodes revoke the voted block but adopt an honest survivor instead
  /// of truncating.  SIZE_MAX = every leader tampers (the dead-chain
  /// cascade).
  std::size_t byzantine_proposers = SIZE_MAX;
  /// Virtual commitment throughput (gas folded per microsecond) used to
  /// model settle latency: a height's commitment costs
  /// Σ sibling gas / commit_gas_per_us of virtual time past its vote.
  std::uint64_t commit_gas_per_us = 45;
  /// Votes required to decide a height.  0 = auto: 2f+1 with
  /// f = ⌊(n−1)/3⌋ over n = validator_nodes.  Explicit values are clamped
  /// to [1, validator_nodes]; quorum_votes == validator_nodes restores the
  /// pre-quorum unanimity behaviour (the differential-test mode).
  std::size_t quorum_votes = 0;
  /// Base vote deadline: a validator that has not decided a height this
  /// long (virtual us) after its proposal fires a timeout and retransmits
  /// (its own vote if cast, else a re-pull of missing announcements).
  /// Deadlines back off exponentially: T, then 2T, 4T, ... after each retry.
  std::uint64_t vote_timeout_us = 500'000;
  /// Retransmissions per validator per height attempt before it gives up.
  /// When every validator has exhausted its budget without quorum, the
  /// height parks and is re-proposed with a bumped attempt counter.
  std::size_t vote_retry_budget = 4;
  /// Proposal attempts per height before the simulation declares liveness
  /// lost (quorum_failures; safety still holds).  Attempts consumed by
  /// fork-choice re-proposals count too.
  std::size_t max_propose_attempts = 8;
  /// Feed each node's *measured* CommitPipeline latency
  /// (CommitResult::commit_ms, via the pipeline settle observer) into the
  /// virtual settle schedule instead of the gas-derived model.  Off by
  /// default: wall-clock measurements vary run to run, so this mode trades
  /// the bit-stability guarantees (and the differential gates that assert
  /// them) for schedule realism.
  bool use_measured_commit_cost = false;
  /// Publish per-account storage seeds keyed by block hash so sibling
  /// validators of the same block share trie rebuild work (stats report
  /// seeds_built / seeds_adopted).
  bool share_block_seeds = true;
  workload::WorkloadConfig workload = workload::preset_mainnet();
  LinkModel link;
};

struct RoundReport {
  std::uint64_t height = 0;
  std::size_t siblings = 0;
  std::size_t valid_siblings = 0;  // post-settle validity (validator 0)
  std::size_t uncles = 0;
  /// Votes cast while the voted block's root check was still in flight.
  std::size_t speculative_votes = 0;
  /// False when the round's canonical block failed settlement and no
  /// sibling survived fork-choice (or a parent round died and the failure
  /// cascaded).  A round whose vote was revoked but re-anchored on a
  /// fork-choice survivor still settles.
  bool settled = false;
  Hash256 canonical_root;  // zero when the round did not settle
  std::uint64_t txs = 0;   // canonical txs; 0 when revoked
  /// End-to-end virtual latency of the live path: propose + gossip +
  /// slowest validator's pipeline, in microseconds (gas converted via
  /// kGasPerUs).
  std::uint64_t round_latency_us = 0;
  /// Virtual time from when this height first became proposable to its
  /// settlement — the number bounded speculation shrinks: it includes any
  /// time the proposal sat parked behind the speculation window plus the
  /// commitment tail the overlap could not hide.
  std::uint64_t settle_latency_us = 0;
  /// Proposal attempts this height consumed (1 = settled first try;
  /// quorum misses and fork-choice truncations both bump it).
  std::size_t attempts = 1;
};

struct ConsensusSimResult {
  std::vector<RoundReport> rounds;
  std::uint64_t total_txs = 0;  // settled rounds only
  std::uint64_t total_uncles = 0;
  std::uint64_t bytes_gossiped = 0;
  /// Provisional votes cast on speculative (pre-settle) tips, summed over
  /// rounds and validators.
  std::uint64_t speculative_votes = 0;
  /// Votes revoked by settlement (root mismatch + revoked speculative
  /// suffixes and cascades).
  std::uint64_t revoked_votes = 0;
  /// Highest height whose canonical block settled (0 = none did).
  std::uint64_t settled_height = 0;
  /// Virtual completion time of the last settlement.
  std::uint64_t makespan_us = 0;
  /// Virtual time proposals spent parked behind the speculation window —
  /// the settlement latency the configured depth failed to overlap.
  std::uint64_t settle_stall_us = 0;
  /// Blocks re-proposed after a fork-choice truncated their first attempt.
  std::uint64_t reproposed_blocks = 0;
  /// Settlement failures resolved by adopting a surviving sibling.
  std::uint64_t fork_choices = 0;
  /// Block-seed sharing effectiveness across sibling validators.
  std::uint64_t seeds_built = 0;
  std::uint64_t seeds_adopted = 0;
  /// Vote deadlines that fired (a validator waited out its backoff without
  /// deciding the height).
  std::uint64_t vote_timeouts = 0;
  /// Messages re-sent by fired deadlines (vote rebroadcasts plus
  /// announcement re-pulls).
  std::uint64_t vote_retransmits = 0;
  /// Heights re-proposed because their quorum never formed within the
  /// retry budget (distinct from reproposed_blocks, the fork-choice path).
  std::uint64_t quorum_reproposals = 0;
  /// Heights abandoned after max_propose_attempts — liveness lost, safety
  /// intact.  Nonzero only under faults the retry budget cannot beat
  /// (e.g. a partition that never heals).
  std::uint64_t quorum_failures = 0;
  /// Network fault-plan counters (mirrors SimNetwork::fault_stats()).
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t messages_partitioned = 0;
  /// Σ measured CommitPipeline latency across every node (wall-clock, via
  /// the settle observers).  Informational unless use_measured_commit_cost
  /// folds it into the virtual schedule.
  double measured_commit_ms = 0.0;
  /// Blocks proposed per execution engine (kAdaptive resolves per block;
  /// fixed proposer modes land entirely in one bucket).  The regime-flip
  /// surface: a dex-heavy workload under kAdaptive must move proposals
  /// into the Block-STM bucket.
  std::uint64_t blocks_occ = 0;
  std::uint64_t blocks_stm = 0;
  bool safety_held = true;  // all validators agreed every round + at settle
  std::string violation;    // populated when safety_held == false

  double avg_round_latency_ms() const noexcept {
    if (rounds.empty()) return 0.0;
    std::uint64_t sum = 0;
    for (const auto& r : rounds) sum += r.round_latency_us;
    return static_cast<double>(sum) / static_cast<double>(rounds.size()) /
           1000.0;
  }

  double avg_settle_latency_ms() const noexcept {
    std::uint64_t sum = 0;
    std::size_t settled = 0;
    for (const auto& r : rounds) {
      if (!r.settled) continue;
      sum += r.settle_latency_us;
      ++settled;
    }
    if (settled == 0) return 0.0;
    return static_cast<double>(sum) / static_cast<double>(settled) / 1000.0;
  }
};

class ConsensusSim {
 public:
  explicit ConsensusSim(ConsensusSimConfig config);

  /// Runs the event-driven simulation to quiescence (every height settled,
  /// or the chain died, or safety was violated) and returns the report.
  ConsensusSimResult run();

  /// The pre-refactor round-batch algorithm: every height is proposed,
  /// gossiped, and voted in lock-step; one post-hoc settle pass then awaits
  /// all pending roots in height order and cascades revocation.  Kept as
  /// the semantic baseline (depth-0 single-proposer run() settles
  /// bit-identical canonical roots) and as the latency baseline for the
  /// depth sweep bench.  Never forks around a failure and never re-proposes.
  ConsensusSimResult run_batch_reference();

  /// Gas-to-time conversion for latency reporting: EVM gas throughput of
  /// one core (mainnet-ish ~30 Mgas/s -> 30 gas/us).
  static constexpr std::uint64_t kGasPerUs = 30;

  /// Resolves the quorum size for `validators` nodes: `configured` clamped
  /// to [1, validators], or — when 0 — the BFT threshold 2f+1 with
  /// f = ⌊(validators−1)/3⌋ (n − f, which equals 2f+1 when n = 3f+1).
  static constexpr std::size_t quorum_size(std::size_t validators,
                                           std::size_t configured) noexcept {
    if (validators == 0) return 0;
    if (configured == 0) {
      const std::size_t f = (validators - 1) / 3;
      return validators - f;
    }
    return configured < 1 ? 1 : (configured > validators ? validators
                                                         : configured);
  }

  /// Deadline of a validator's retry-`retry` vote timeout for a height
  /// proposed at `propose_us`: cumulative exponential backoff
  /// propose + T + 2T + ... + 2^retry·T  ==  propose + (2^(retry+1) − 1)·T.
  static constexpr std::uint64_t vote_deadline(std::uint64_t propose_us,
                                               std::uint64_t timeout_us,
                                               std::size_t retry) noexcept {
    return propose_us + ((std::uint64_t{2} << retry) - 1) * timeout_us;
  }

  const ConsensusSimConfig& config() const noexcept { return config_; }

 private:
  ConsensusSimConfig config_;
};

}  // namespace blockpilot::net
