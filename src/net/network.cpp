#include "net/network.hpp"

namespace blockpilot::net {

void SimNetwork::broadcast(NodeId from, std::uint64_t send_time_us,
                           Bytes payload) {
  BP_ASSERT(from < node_count_);
  for (NodeId to = 0; to < node_count_; ++to) {
    if (to == from) continue;
    send(from, to, send_time_us, payload);
  }
}

void SimNetwork::send(NodeId from, NodeId to, std::uint64_t send_time_us,
                      Bytes payload) {
  BP_ASSERT(from < node_count_ && to < node_count_);
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.send_time_us = send_time_us;
  msg.deliver_time_us = send_time_us + link_.transit_time(payload.size());
  if (link_.jitter_us > 0) {
    // splitmix64 step: one deterministic draw per send, so delivery order
    // depends only on (seed, send sequence) — reproducible shuffling.
    std::uint64_t x = (jitter_state_ += 0x9e3779b97f4a7c15ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    msg.deliver_time_us += x % (link_.jitter_us + 1);
  }
  bytes_sent_ += payload.size();
  msg.payload = std::move(payload);
  queue_.push(std::move(msg));
}

std::optional<Message> SimNetwork::next_delivery() {
  if (queue_.empty()) return std::nullopt;
  Message msg = queue_.top();
  queue_.pop();
  return msg;
}

}  // namespace blockpilot::net
