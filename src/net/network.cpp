#include "net/network.hpp"

namespace blockpilot::net {

void SimNetwork::broadcast(NodeId from, std::uint64_t send_time_us,
                           Bytes payload) {
  BP_ASSERT(from < node_count_);
  for (NodeId to = 0; to < node_count_; ++to) {
    if (to == from) continue;
    send(from, to, send_time_us, payload);
  }
}

void SimNetwork::send(NodeId from, NodeId to, std::uint64_t send_time_us,
                      Bytes payload) {
  BP_ASSERT(from < node_count_ && to < node_count_);
  // Wire bytes are spent the moment the message is put on the link,
  // whatever the fault plan does to it afterwards.
  bytes_sent_ += payload.size();

  const FaultPlan& faults = link_.faults;
  // Partition filter: a split link simply eats the message.  No draw is
  // consumed — partitions are schedule-driven, not probabilistic.
  for (const PartitionWindow& pw : faults.partitions) {
    if (pw.splits(from, to, send_time_us)) {
      ++fault_stats_.partitioned;
      return;
    }
  }
  if (faults.drop_per_mille > 0 &&
      splitmix64(fault_state_) % 1000 < faults.drop_per_mille) {
    ++fault_stats_.dropped;
    return;
  }

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.send_time_us = send_time_us;
  msg.deliver_time_us = send_time_us + link_.transit_time(payload.size());
  if (link_.jitter_us > 0) {
    // splitmix64 step: one deterministic draw per send, so delivery order
    // depends only on (seed, send sequence) — reproducible shuffling.
    msg.deliver_time_us += splitmix64(jitter_state_) % (link_.jitter_us + 1);
  }
  if (faults.reorder_per_mille > 0 &&
      splitmix64(fault_state_) % 1000 < faults.reorder_per_mille) {
    // A reordering burst: this delivery leapfrogs behind later traffic.
    msg.deliver_time_us += faults.reorder_burst_us;
    ++fault_stats_.reordered;
  }
  msg.payload = std::move(payload);
  if (faults.duplicate_per_mille > 0 &&
      splitmix64(fault_state_) % 1000 < faults.duplicate_per_mille) {
    // The duplicate trails the original by a deterministic sub-hop delay.
    Message dup = msg;
    dup.deliver_time_us +=
        1 + splitmix64(fault_state_) % (link_.base_latency_us + 1);
    ++fault_stats_.duplicated;
    queue_.push(std::move(dup));
  }
  queue_.push(std::move(msg));
}

std::optional<Message> SimNetwork::next_delivery() {
  if (queue_.empty()) return std::nullopt;
  Message msg = queue_.top();
  queue_.pop();
  return msg;
}

}  // namespace blockpilot::net
