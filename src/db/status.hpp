// Typed error surface of the db layer.
//
// The store sits under the trie and must never turn disk damage into UB or
// a silent wrong answer: a torn page, a bad manifest slot, or a flipped bit
// in a sealed page surfaces as a Status the caller can branch on (tests
// assert the exact code).  BP_ASSERT stays reserved for programmer errors —
// data errors travel through this type.
#pragma once

#include <string>
#include <utility>

namespace blockpilot::db {

enum class ErrorCode {
  kOk = 0,
  kNotFound,     // no record for the requested hash / ref
  kCorruptPage,  // page checksum or header mismatch inside the durable range
  kBadManifest,  // no decodable manifest slot (both slots torn/invalid)
  kIo,           // OS-level read/write/sync failure
  kTooLarge,     // record exceeds the jumbo span limit
  kBusy,         // store is mid-swap (compaction) and cannot serve this call
};

struct Status {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  bool ok() const noexcept { return code == ErrorCode::kOk; }

  static Status Ok() { return {}; }
  static Status error(ErrorCode c, std::string msg) {
    return Status{c, std::move(msg)};
  }
};

inline const char* error_name(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kCorruptPage: return "corrupt_page";
    case ErrorCode::kBadManifest: return "bad_manifest";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kBusy: return "busy";
  }
  return "?";
}

}  // namespace blockpilot::db
