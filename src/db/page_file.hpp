// PageFile: the append-only paged record file under PagedNodeStore.
//
// The file is a sequence of fixed-size pages, each independently
// checksummed, so damage is detected at page granularity and a torn tail
// (the crash case) never corrupts records behind the last durability
// barrier.  Records are addressed by PageRef = (page, offset) and never
// move once written — the store's index and the trie's on-disk node refs
// stay valid for the file's lifetime (compaction writes a *new* file).
//
// Page layout (kPageHeaderSize bytes, then payload):
//   u32 magic  u32 page_no  u32 used  u32 flags  u64 checksum
// `used` counts payload bytes; `checksum` is FNV-1a64 over the whole page
// with the checksum field zeroed.  Records pack back-to-back in the
// payload as {u32 len, bytes}; a record that does not fit in the current
// page's remaining payload seals the page and starts the next one, so
// ordinary pages contain only whole records.  A record longer than one
// payload becomes a *jumbo span*: it opens a fresh page flagged
// kJumboStart and continues through kJumboCont pages, each with its own
// header and checksum.
//
// Write path: sealed pages are pwritten immediately; the current partial
// page lives in memory until sync() seals it (short page: `used` < payload
// capacity) and fsyncs.  Sealed pages are never rewritten, which is what
// makes the format crash-safe: after a crash, every byte at or before the
// last synced page boundary is exactly what sync() flushed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "db/status.hpp"

namespace blockpilot::db {

using Bytes = std::vector<std::uint8_t>;

/// Stable address of one record: page number and byte offset into that
/// page's payload area.  The on-disk form of a trie node ref.
struct PageRef {
  std::uint32_t page = 0;
  std::uint32_t offset = 0;

  bool operator==(const PageRef&) const = default;
};

class PageFile {
 public:
  static constexpr std::uint32_t kMagic = 0x42506147;  // "BPaG"
  static constexpr std::size_t kPageHeaderSize = 24;
  static constexpr std::uint32_t kFlagJumboStart = 1u << 0;
  static constexpr std::uint32_t kFlagJumboCont = 1u << 1;
  static constexpr std::size_t kRecordHeaderSize = 4;  // u32 length

  struct Options {
    std::size_t page_size = 4096;
  };

  /// Opens (creating when absent) the page file at `path`.  `sealed_pages`
  /// bounds the trusted region: bytes past it are a possibly-torn tail and
  /// are physically truncated away so new appends start clean.  Pass the
  /// manifest's page count on recovery, or SIZE_MAX to trust the whole
  /// file (fresh files only).
  static Status open(const std::string& path, const Options& opts,
                     std::uint64_t sealed_pages,
                     std::unique_ptr<PageFile>& out);

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Appends one record, returning its stable ref.  The record becomes
  /// durable only after the next sync().
  Status append(std::span<const std::uint8_t> record, PageRef& ref);

  /// Seals the current partial page (if any) and fsyncs.  After sync(),
  /// sealed_pages() pages are durable and immutable.
  Status sync();

  /// Reads the record at `ref` (sealed pages from disk, the partial page
  /// from memory), verifying every page checksum on the way.
  Status read(const PageRef& ref, Bytes& out) const;

  /// Walks every whole record in pages [0, sealed_pages()) plus the
  /// in-memory partial page, invoking `fn(ref, record)`.  Stops and
  /// returns the first non-ok status (from a damaged page or from `fn`).
  Status scan(
      const std::function<Status(const PageRef&, std::span<const std::uint8_t>)>&
          fn) const;

  std::uint64_t sealed_pages() const noexcept { return sealed_pages_; }
  std::size_t page_size() const noexcept { return page_size_; }
  std::size_t payload_capacity() const noexcept {
    return page_size_ - kPageHeaderSize;
  }
  /// Total bytes the file occupies on disk (sealed pages only).
  std::uint64_t file_bytes() const noexcept {
    return sealed_pages_ * page_size_;
  }
  const std::string& path() const noexcept { return path_; }

  /// Removes the file from disk (used when compaction retires it).  The
  /// object must not be used afterwards.
  static Status unlink(const std::string& path);

 private:
  PageFile(std::string path, int fd, const Options& opts);

  Status seal_current_page(std::uint32_t flags_of_next);
  Status write_page(std::uint32_t page_no, std::span<const std::uint8_t> page);
  Status load_page(std::uint32_t page_no, Bytes& page) const;
  static std::uint64_t page_checksum(std::span<const std::uint8_t> page);
  void start_page(std::uint32_t flags);

  std::string path_;
  int fd_ = -1;
  std::size_t page_size_;
  std::uint64_t sealed_pages_ = 0;
  // Current (unsealed) page: header fields are filled at seal time.
  Bytes cur_page_;
  std::uint32_t cur_used_ = 0;   // payload bytes used
  std::uint32_t cur_flags_ = 0;  // jumbo continuation marker
};

}  // namespace blockpilot::db
