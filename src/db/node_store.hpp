// NodeStore: the content-addressed MPT node store the trie layer resolves
// disk-backed node refs through.
//
// Nodes are immutable and keyed by their keccak-256 reference (exactly the
// 32-byte child refs inside parent encodings), so a store is a write-once
// map hash -> RLP encoding plus a durability barrier: commit_root(root, h)
// promises that every node reachable from `root` survives a crash.  Two
// backends implement the interface:
//
//   * InMemoryNodeStore — an unordered_map.  The reference backend: every
//     existing test and differential gates against it, and the paged
//     backend must be bit-identical to it at every height.
//   * PagedNodeStore (paged_node_store.hpp) — the append-only paged file
//     with manifest-based crash recovery and compaction.
//
// Reads are hot-path (trie stub resolution on proposer/validator lanes),
// so the interface is deliberately tiny and the async fan-out lives in
// AsyncReader, which schedules get() calls on the shared ThreadPool and
// hands back issue-then-await tickets.
#pragma once

#include <future>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "db/status.hpp"
#include "support/thread_pool.hpp"
#include "types/address.hpp"

namespace blockpilot::db {

class NodeStore {
 public:
  virtual ~NodeStore() = default;

  /// Stores `encoding` under `hash`.  Idempotent: re-putting an existing
  /// hash is a no-op (content-addressing makes collisions impossible).
  virtual Status put(const Hash256& hash,
                     std::span<const std::uint8_t> encoding) = 0;

  /// Fetches the encoding stored under `hash` into `out`.
  /// kNotFound when absent; backends surface damage as kCorruptPage.
  virtual Status get(const Hash256& hash,
                     std::vector<std::uint8_t>& out) const = 0;

  /// Whether a node is already stored (used to prune persist walks at
  /// unchanged subtrees).
  virtual bool contains(const Hash256& hash) const = 0;

  /// Durability barrier: after this returns ok, a crash recovers to a
  /// store containing at least every node reachable from `root`.
  virtual Status commit_root(const Hash256& root, std::uint64_t height) = 0;

  /// The last root commit_root() made durable (zero hash when none).
  virtual Hash256 durable_root() const = 0;
  virtual std::uint64_t durable_height() const = 0;

  struct Stats {
    std::uint64_t puts = 0;          // put() calls that stored a new node
    std::uint64_t dup_puts = 0;      // put() calls answered by dedup
    std::uint64_t gets = 0;          // get() calls served
    std::uint64_t get_misses = 0;    // get() calls that found nothing
    std::uint64_t roots_committed = 0;
    std::uint64_t node_bytes = 0;    // payload bytes of stored nodes
    std::uint64_t nodes = 0;         // stored node count
    std::uint64_t file_bytes = 0;    // on-disk footprint (0 for in-memory)
    std::uint64_t recovered_nodes = 0;   // nodes re-indexed at open
    std::uint64_t compactions = 0;       // completed compaction passes
    std::uint64_t compacted_bytes = 0;   // dead bytes reclaimed
  };
  virtual Stats stats() const = 0;
};

/// The reference backend: a mutex-guarded map.  commit_root only records
/// the root (RAM is "durable" for the reference semantics the differentials
/// gate on).
class InMemoryNodeStore final : public NodeStore {
 public:
  Status put(const Hash256& hash,
             std::span<const std::uint8_t> encoding) override;
  Status get(const Hash256& hash,
             std::vector<std::uint8_t>& out) const override;
  bool contains(const Hash256& hash) const override;
  Status commit_root(const Hash256& root, std::uint64_t height) override;
  Hash256 durable_root() const override;
  std::uint64_t durable_height() const override;
  Stats stats() const override;

 private:
  mutable std::mutex mu_;
  std::unordered_map<Hash256, std::vector<std::uint8_t>> nodes_;
  Hash256 durable_root_;
  std::uint64_t durable_height_ = 0;
  mutable Stats stats_;
};

/// One completed async node fetch.
struct ReadResult {
  Status status;
  std::vector<std::uint8_t> encoding;
};

/// Issue-then-await async reads over any NodeStore: fetches run as tasks on
/// the shared ThreadPool (the "background reader"), so proposer/validator
/// lanes overlap page I/O with execution instead of blocking on each miss.
/// Without a pool the fetch degrades to inline (still correct, not async).
class AsyncReader {
 public:
  explicit AsyncReader(const NodeStore& store, ThreadPool* pool = nullptr)
      : store_(store), pool_(pool) {}

  /// Issues a fetch for `hash`; await the returned future where the node
  /// is actually needed.
  std::future<ReadResult> issue(const Hash256& hash);

  /// Fire-and-forget warm-up: fetches every hash and feeds each encoding
  /// to `warm` (e.g. NodeCache interning) on the pool.  Returns the number
  /// of fetches issued; wait_idle() on the pool to rendezvous.
  std::size_t warm(std::span<const Hash256> hashes,
                   std::function<void(std::span<const std::uint8_t>)> warm);

 private:
  const NodeStore& store_;
  ThreadPool* pool_;
};

}  // namespace blockpilot::db
