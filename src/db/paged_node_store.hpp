// PagedNodeStore: the on-disk NodeStore backend.
//
// Layout on disk (inside one data directory):
//
//   nodes.<seq>.bpdb   append-only PageFile of {32B hash, RLP encoding}
//                      records; <seq> bumps when compaction rewrites the
//                      file (records never move within one file).
//   MANIFEST.bpdb      two fixed 128-byte slots written alternately
//                      (generation % 2), each carrying {generation, durable
//                      root, height, sealed page count, data-file seq, page
//                      size, checksum}.  A slot write is a single sector
//                      pwrite + fsync, so at least one slot always decodes;
//                      the valid slot with the highest generation wins.
//
// Durability protocol (commit_root): seal + fsync the data file, then
// write the next manifest slot and fsync it.  A crash at any point
// recovers to the previous manifest: open() truncates the data file to the
// manifest's sealed-page count (discarding torn pages and appends the
// manifest never acknowledged) and rebuilds the hash -> (page, offset)
// index by scanning the trusted pages, verifying every checksum.  Damage
// inside the trusted range surfaces as ErrorCode::kCorruptPage — never UB.
//
// Liveness and compaction: nodes are content-addressed and append-only, so
// space is reclaimed by a sweep that keeps every node reachable from the
// recently committed roots (plus nodes appended within the last
// `retained_roots` commit generations, which covers speculative states the
// pipeline persisted ahead of finalization) and rewrites the survivors
// into a fresh data file.  The sweep runs on the shared ThreadPool behind
// commit_root when the live ratio falls below the threshold; puts that
// race the copy phase are re-appended during the short locked swap, so
// commits never stall for a whole compaction.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "db/node_store.hpp"
#include "db/page_file.hpp"
#include "support/thread_pool.hpp"

namespace blockpilot::db {

class PagedNodeStore final : public NodeStore {
 public:
  struct Options {
    std::size_t page_size = 4096;
    /// Background sweeper + async readers run here; nullptr disables the
    /// automatic sweep (compact()/maybe_compact() still work inline).
    ThreadPool* pool = nullptr;
    /// Liveness horizon: roots from the last N commits (and nodes appended
    /// within the last N commit generations) survive compaction.  Must be
    /// at least the consensus speculation depth.
    std::size_t retained_roots = 8;
    /// Compact when live/total record bytes falls below this.
    double sweep_live_ratio = 0.5;
    /// Check the ratio every N commits (0 disables the background sweep).
    std::size_t sweep_check_interval = 16;
    /// Skip sweeps while the file is smaller than this.
    std::size_t min_sweep_bytes = std::size_t{1} << 20;
  };

  /// Opens (or creates) the store in `dir`, running crash recovery when a
  /// manifest exists.  `dir` must already exist.
  static Status open(const std::string& dir, const Options& opts,
                     std::unique_ptr<PagedNodeStore>& out);

  ~PagedNodeStore() override;

  // NodeStore interface.
  Status put(const Hash256& hash,
             std::span<const std::uint8_t> encoding) override;
  Status get(const Hash256& hash,
             std::vector<std::uint8_t>& out) const override;
  bool contains(const Hash256& hash) const override;
  Status commit_root(const Hash256& root, std::uint64_t height) override;
  Hash256 durable_root() const override;
  std::uint64_t durable_height() const override;
  Stats stats() const override;

  /// Rewrites the live set into a fresh data file and retires the old one.
  Status compact();

  /// compact() iff live ratio < sweep_live_ratio and the file is big
  /// enough to bother.  The background sweeper calls exactly this.
  Status maybe_compact();

  /// Fraction of stored record bytes reachable from the retained roots
  /// (1.0 for an empty store).  Walk-based — costs one index traversal.
  double live_ratio() const;

  /// Test/bench hooks.
  std::string data_file_path() const;
  std::uint64_t file_seq() const;
  std::size_t node_count() const;
  /// Scans every trusted page, verifying all checksums.
  Status verify_all_pages() const;

 private:
  PagedNodeStore(std::string dir, const Options& opts);

  Status write_manifest_locked(const Hash256& root, std::uint64_t height);
  Status load_or_init_manifest(bool& fresh);
  Status rebuild_index_locked();
  Status get_impl(const Hash256& hash, std::vector<std::uint8_t>& out) const;
  /// Live record set (hashes) from retained roots + young appends;
  /// locks per record, so commits interleave with the walk.
  std::unordered_set<Hash256> walk_live(std::uint64_t* live_bytes) const;
  static std::string data_file_name(std::uint64_t seq);

  std::string dir_;
  Options opts_;
  std::uint64_t durable_pages_hint_ = 0;  // manifest sealed_pages at open

  mutable std::mutex mu_;
  std::unique_ptr<PageFile> file_;
  int manifest_fd_ = -1;
  std::uint64_t manifest_gen_ = 0;
  std::uint64_t file_seq_ = 1;
  std::unordered_map<Hash256, PageRef> index_;
  std::uint64_t total_record_bytes_ = 0;  // 32B hash + encoding, per record
  Hash256 durable_root_;
  std::uint64_t durable_height_ = 0;

  // Liveness horizon bookkeeping (see class comment).
  std::uint64_t commit_gen_ = 0;
  std::deque<std::pair<Hash256, std::uint64_t>> recent_roots_;
  std::unordered_map<Hash256, std::uint64_t> recent_puts_;  // hash -> gen

  // Compaction rendezvous.
  bool compacting_ = false;  // guarded by mu_
  std::vector<Hash256> puts_during_compaction_;  // guarded by mu_
  std::size_t commits_since_sweep_ = 0;          // guarded by mu_
  std::atomic<bool> sweep_inflight_{false};

  mutable Stats stats_;  // guarded by mu_
};

}  // namespace blockpilot::db
