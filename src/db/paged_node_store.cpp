#include "db/paged_node_store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "support/assert.hpp"

namespace blockpilot::db {

namespace {

constexpr std::uint32_t kManifestMagic = 0x42506d46;  // "BPmF"
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::size_t kManifestSlotSize = 128;
constexpr std::size_t kManifestChecksumOff = 120;

void store_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_u32(p, static_cast<std::uint32_t>(v));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

std::uint64_t slot_checksum(std::span<const std::uint8_t> slot) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < slot.size(); ++i) {
    const bool in_field =
        i >= kManifestChecksumOff && i < kManifestChecksumOff + 8;
    h ^= in_field ? 0 : slot[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct ManifestSlot {
  std::uint64_t generation = 0;
  std::uint64_t height = 0;
  Hash256 root;
  std::uint64_t sealed_pages = 0;
  std::uint32_t file_seq = 1;
  std::uint32_t page_size = 4096;
  std::uint64_t total_record_bytes = 0;
};

void encode_slot(const ManifestSlot& m, std::uint8_t* out) {
  std::memset(out, 0, kManifestSlotSize);
  store_u32(out, kManifestMagic);
  store_u32(out + 4, kManifestVersion);
  store_u64(out + 8, m.generation);
  store_u64(out + 16, m.height);
  std::memcpy(out + 24, m.root.bytes.data(), 32);
  store_u64(out + 56, m.sealed_pages);
  store_u32(out + 64, m.file_seq);
  store_u32(out + 68, m.page_size);
  store_u64(out + 72, m.total_record_bytes);
  store_u64(out + kManifestChecksumOff,
            slot_checksum(std::span(out, kManifestSlotSize)));
}

bool decode_slot(std::span<const std::uint8_t> in, ManifestSlot& m) {
  if (in.size() < kManifestSlotSize) return false;
  if (load_u32(in.data()) != kManifestMagic) return false;
  if (load_u32(in.data() + 4) != kManifestVersion) return false;
  if (load_u64(in.data() + kManifestChecksumOff) !=
      slot_checksum(in.subspan(0, kManifestSlotSize)))
    return false;
  m.generation = load_u64(in.data() + 8);
  m.height = load_u64(in.data() + 16);
  std::memcpy(m.root.bytes.data(), in.data() + 24, 32);
  m.sealed_pages = load_u64(in.data() + 56);
  m.file_seq = load_u32(in.data() + 64);
  m.page_size = load_u32(in.data() + 68);
  m.total_record_bytes = load_u64(in.data() + 72);
  return m.page_size > PageFile::kPageHeaderSize + PageFile::kRecordHeaderSize;
}

// ---- liveness: candidate child refs of one node encoding -----------------
//
// A tolerant, non-asserting RLP bounds walk.  Every 32-byte string item is
// a candidate child ref (the caller gates on index membership, so a value
// that merely *looks* like a hash only over-approximates liveness), and
// string payloads that themselves parse as complete RLP are walked too —
// that is how the account-leaf value's embedded storageRoot keeps the
// account's storage trie alive across the account -> storage link.

bool parse_header(std::span<const std::uint8_t> d, std::size_t& pos,
                  bool& is_list, std::size_t& off, std::size_t& len) {
  if (pos >= d.size()) return false;
  const std::uint8_t b = d[pos];
  std::size_t lol = 0;
  if (b < 0x80) {
    is_list = false;
    off = pos;
    len = 1;
    pos += 1;
    return true;
  }
  if (b <= 0xb7) {
    is_list = false;
    len = b - 0x80;
    off = pos + 1;
  } else if (b <= 0xbf) {
    is_list = false;
    lol = b - 0xb7;
  } else if (b <= 0xf7) {
    is_list = true;
    len = b - 0xc0;
    off = pos + 1;
  } else {
    is_list = true;
    lol = b - 0xf7;
  }
  if (lol > 0) {
    if (lol > 8 || pos + 1 + lol > d.size()) return false;
    len = 0;
    for (std::size_t i = 0; i < lol; ++i)
      len = (len << 8) | d[pos + 1 + i];
    off = pos + 1 + lol;
  }
  if (off + len > d.size()) return false;
  pos = off + len;
  return true;
}

bool collect_candidates(std::span<const std::uint8_t> d, int depth,
                        std::vector<Hash256>& out) {
  if (depth > 32) return false;
  std::size_t pos = 0;
  while (pos < d.size()) {
    bool is_list;
    std::size_t off, len;
    if (!parse_header(d, pos, is_list, off, len)) return false;
    const auto payload = d.subspan(off, len);
    if (is_list) {
      if (!collect_candidates(payload, depth + 1, out)) return false;
    } else {
      if (len == 32) {
        Hash256 h;
        std::memcpy(h.bytes.data(), payload.data(), 32);
        out.push_back(h);
      }
      if (len > 1) {
        // Speculatively walk the string's content as nested RLP; discard
        // its candidates unless the whole payload parses.
        std::vector<Hash256> nested;
        if (collect_candidates(payload, depth + 1, nested))
          out.insert(out.end(), nested.begin(), nested.end());
      }
    }
  }
  return true;
}

Status io_error(const char* what, const std::string& path) {
  return Status::error(ErrorCode::kIo, std::string(what) + " failed for " +
                                           path + ": " + std::strerror(errno));
}

}  // namespace

std::string PagedNodeStore::data_file_name(std::uint64_t seq) {
  return "nodes." + std::to_string(seq) + ".bpdb";
}

PagedNodeStore::PagedNodeStore(std::string dir, const Options& opts)
    : dir_(std::move(dir)), opts_(opts) {}

PagedNodeStore::~PagedNodeStore() {
  // Rendezvous with a background sweep still running on the pool.
  while (sweep_inflight_.load(std::memory_order_acquire))
    std::this_thread::yield();
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
}

Status PagedNodeStore::open(const std::string& dir, const Options& opts,
                            std::unique_ptr<PagedNodeStore>& out) {
  std::unique_ptr<PagedNodeStore> store(new PagedNodeStore(dir, opts));

  const std::string manifest_path = dir + "/MANIFEST.bpdb";
  store->manifest_fd_ =
      ::open(manifest_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (store->manifest_fd_ < 0) return io_error("open", manifest_path);

  bool fresh = false;
  Status st = store->load_or_init_manifest(fresh);
  if (!st.ok()) return st;

  // Drop data files the manifest does not own: everything on a fresh
  // store (nothing was ever durable), and stale generations left behind
  // by a crashed compaction otherwise.
  if (DIR* d = ::opendir(dir.c_str()); d != nullptr) {
    const std::string keep = fresh ? "" : data_file_name(store->file_seq_);
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.rfind("nodes.", 0) == 0 && name != keep)
        (void)PageFile::unlink(dir + "/" + name);
    }
    ::closedir(d);
  }

  PageFile::Options fopts;
  fopts.page_size = store->opts_.page_size;
  st = PageFile::open(dir + "/" + data_file_name(store->file_seq_), fopts,
                      fresh ? UINT64_MAX : store->durable_pages_hint_,
                      store->file_);
  if (!st.ok()) return st;

  if (!fresh) {
    st = store->rebuild_index_locked();
    if (!st.ok()) return st;
  }
  out = std::move(store);
  return Status::Ok();
}

Status PagedNodeStore::load_or_init_manifest(bool& fresh) {
  std::uint8_t buf[2 * kManifestSlotSize] = {};
  const ssize_t n = ::pread(manifest_fd_, buf, sizeof(buf), 0);
  if (n < 0) return io_error("pread", dir_ + "/MANIFEST.bpdb");
  if (n == 0) {
    fresh = true;
    return Status::Ok();
  }
  ManifestSlot a, b;
  const bool a_ok = decode_slot(std::span(buf, kManifestSlotSize), a);
  const bool b_ok = static_cast<std::size_t>(n) >= 2 * kManifestSlotSize &&
                    decode_slot(std::span(buf + kManifestSlotSize,
                                          kManifestSlotSize),
                                b);
  if (!a_ok && !b_ok)
    return Status::error(ErrorCode::kBadManifest,
                         "no decodable manifest slot in " + dir_);
  const ManifestSlot& best =
      (a_ok && b_ok) ? (a.generation >= b.generation ? a : b)
                     : (a_ok ? a : b);
  manifest_gen_ = best.generation;
  durable_root_ = best.root;
  durable_height_ = best.height;
  file_seq_ = best.file_seq;
  opts_.page_size = best.page_size;  // the file's geometry wins
  durable_pages_hint_ = best.sealed_pages;
  recent_roots_.emplace_back(durable_root_, commit_gen_);
  fresh = false;
  return Status::Ok();
}

Status PagedNodeStore::write_manifest_locked(const Hash256& root,
                                             std::uint64_t height) {
  ManifestSlot m;
  m.generation = manifest_gen_ + 1;
  m.height = height;
  m.root = root;
  m.sealed_pages = file_->sealed_pages();
  m.file_seq = static_cast<std::uint32_t>(file_seq_);
  m.page_size = static_cast<std::uint32_t>(file_->page_size());
  m.total_record_bytes = total_record_bytes_;
  std::uint8_t slot[kManifestSlotSize];
  encode_slot(m, slot);
  const off_t at =
      static_cast<off_t>((m.generation % 2) * kManifestSlotSize);
  std::size_t done = 0;
  while (done < sizeof(slot)) {
    const ssize_t n = ::pwrite(manifest_fd_, slot + done,
                               sizeof(slot) - done, at + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("pwrite", dir_ + "/MANIFEST.bpdb");
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(manifest_fd_) != 0)
    return io_error("fsync", dir_ + "/MANIFEST.bpdb");
  manifest_gen_ = m.generation;
  return Status::Ok();
}

Status PagedNodeStore::rebuild_index_locked() {
  Status st = file_->scan(
      [&](const PageRef& ref, std::span<const std::uint8_t> rec) -> Status {
        if (rec.size() < 32)
          return Status::error(ErrorCode::kCorruptPage,
                               "record shorter than a node hash");
        Hash256 h;
        std::memcpy(h.bytes.data(), rec.data(), 32);
        if (index_.emplace(h, ref).second) {
          total_record_bytes_ += rec.size();
          ++stats_.nodes;
          stats_.node_bytes += rec.size() - 32;
        }
        return Status::Ok();
      });
  if (!st.ok()) return st;
  stats_.recovered_nodes = index_.size();
  return Status::Ok();
}

Status PagedNodeStore::put(const Hash256& hash,
                           std::span<const std::uint8_t> encoding) {
  std::scoped_lock lk(mu_);
  if (index_.contains(hash)) {
    ++stats_.dup_puts;
    return Status::Ok();
  }
  std::vector<std::uint8_t> rec;
  rec.reserve(32 + encoding.size());
  rec.insert(rec.end(), hash.bytes.begin(), hash.bytes.end());
  rec.insert(rec.end(), encoding.begin(), encoding.end());
  PageRef ref;
  const Status st = file_->append(std::span(rec), ref);
  if (!st.ok()) return st;
  index_.emplace(hash, ref);
  total_record_bytes_ += rec.size();
  recent_puts_[hash] = commit_gen_;
  if (compacting_) puts_during_compaction_.push_back(hash);
  ++stats_.puts;
  ++stats_.nodes;
  stats_.node_bytes += encoding.size();
  return Status::Ok();
}

Status PagedNodeStore::get_impl(const Hash256& hash,
                                std::vector<std::uint8_t>& out) const {
  const auto it = index_.find(hash);
  if (it == index_.end()) {
    ++stats_.get_misses;
    return Status::error(ErrorCode::kNotFound, "node not in store");
  }
  std::vector<std::uint8_t> rec;
  const Status st = file_->read(it->second, rec);
  if (!st.ok()) return st;
  if (rec.size() < 32 ||
      std::memcmp(rec.data(), hash.bytes.data(), 32) != 0)
    return Status::error(ErrorCode::kCorruptPage,
                         "stored record does not match its hash");
  out.assign(rec.begin() + 32, rec.end());
  ++stats_.gets;
  return Status::Ok();
}

Status PagedNodeStore::get(const Hash256& hash,
                           std::vector<std::uint8_t>& out) const {
  std::scoped_lock lk(mu_);
  return get_impl(hash, out);
}

bool PagedNodeStore::contains(const Hash256& hash) const {
  std::scoped_lock lk(mu_);
  return index_.contains(hash);
}

Status PagedNodeStore::commit_root(const Hash256& root,
                                   std::uint64_t height) {
  ThreadPool* sweep_pool = nullptr;
  {
    std::scoped_lock lk(mu_);
    Status st = file_->sync();
    if (!st.ok()) return st;
    st = write_manifest_locked(root, height);
    if (!st.ok()) return st;
    durable_root_ = root;
    durable_height_ = height;
    ++commit_gen_;
    ++stats_.roots_committed;
    recent_roots_.emplace_back(root, commit_gen_);
    while (recent_roots_.size() > opts_.retained_roots)
      recent_roots_.pop_front();
    // Age out the young-append horizon so the put map stays bounded.
    if (commit_gen_ % opts_.retained_roots == 0) {
      std::erase_if(recent_puts_, [&](const auto& kv) {
        return kv.second + opts_.retained_roots < commit_gen_;
      });
    }
    if (opts_.pool != nullptr && opts_.sweep_check_interval > 0 &&
        ++commits_since_sweep_ >= opts_.sweep_check_interval) {
      commits_since_sweep_ = 0;
      if (!sweep_inflight_.exchange(true, std::memory_order_acq_rel))
        sweep_pool = opts_.pool;
    }
  }
  if (sweep_pool != nullptr) {
    sweep_pool->submit([this] {
      (void)maybe_compact();
      sweep_inflight_.store(false, std::memory_order_release);
    });
  }
  return Status::Ok();
}

Hash256 PagedNodeStore::durable_root() const {
  std::scoped_lock lk(mu_);
  return durable_root_;
}

std::uint64_t PagedNodeStore::durable_height() const {
  std::scoped_lock lk(mu_);
  return durable_height_;
}

NodeStore::Stats PagedNodeStore::stats() const {
  std::scoped_lock lk(mu_);
  Stats s = stats_;
  s.file_bytes = file_->file_bytes();
  return s;
}

// BFS over the node graph from the retained roots plus the young appends.
// Per-node locking (get() takes mu_ per record), so commits interleave.
std::unordered_set<Hash256> PagedNodeStore::walk_live(
    std::uint64_t* live_bytes) const {
  std::vector<Hash256> frontier;
  {
    std::scoped_lock lk(mu_);
    for (const auto& [root, gen] : recent_roots_) frontier.push_back(root);
    for (const auto& [hash, gen] : recent_puts_) frontier.push_back(hash);
  }
  std::unordered_set<Hash256> live;
  std::uint64_t bytes = 0;
  std::vector<std::uint8_t> enc;
  std::vector<Hash256> kids;
  while (!frontier.empty()) {
    const Hash256 h = frontier.back();
    frontier.pop_back();
    if (live.contains(h)) continue;
    if (!get(h, enc).ok()) continue;  // zero root / foreign candidate
    live.insert(h);
    bytes += 32 + enc.size();
    kids.clear();
    (void)collect_candidates(std::span(enc), 0, kids);
    for (const Hash256& k : kids)
      if (!live.contains(k)) frontier.push_back(k);
  }
  if (live_bytes != nullptr) *live_bytes = bytes;
  return live;
}

double PagedNodeStore::live_ratio() const {
  std::uint64_t live_bytes = 0;
  (void)walk_live(&live_bytes);
  std::scoped_lock lk(mu_);
  if (total_record_bytes_ == 0) return 1.0;
  return static_cast<double>(live_bytes) /
         static_cast<double>(total_record_bytes_);
}

Status PagedNodeStore::maybe_compact() {
  {
    std::scoped_lock lk(mu_);
    if (compacting_) return Status::error(ErrorCode::kBusy, "compacting");
    if (file_->file_bytes() < opts_.min_sweep_bytes) return Status::Ok();
  }
  if (live_ratio() >= opts_.sweep_live_ratio) return Status::Ok();
  return compact();
}

Status PagedNodeStore::compact() {
  {
    std::scoped_lock lk(mu_);
    if (compacting_)
      return Status::error(ErrorCode::kBusy, "compaction already running");
    compacting_ = true;
    puts_during_compaction_.clear();
  }

  // Copy phase (out of lock): rewrite the live set into a fresh file.
  const std::unordered_set<Hash256> live = walk_live(nullptr);
  const std::uint64_t new_seq = file_seq_ + 1;
  const std::string new_path = dir_ + "/" + data_file_name(new_seq);
  (void)PageFile::unlink(new_path);  // stale leftover from a crashed sweep
  PageFile::Options fopts;
  fopts.page_size = opts_.page_size;
  std::unique_ptr<PageFile> new_file;
  Status st = PageFile::open(new_path, fopts, 0, new_file);
  auto abort_compaction = [&](Status why) {
    std::scoped_lock lk(mu_);
    compacting_ = false;
    puts_during_compaction_.clear();
    return why;
  };
  if (!st.ok()) return abort_compaction(st);

  std::unordered_map<Hash256, PageRef> new_index;
  std::uint64_t new_total = 0;
  std::vector<std::uint8_t> enc, rec;
  auto copy_one = [&](const Hash256& h, Status (PagedNodeStore::*getter)(
                                            const Hash256&,
                                            std::vector<std::uint8_t>&)
                                            const) -> Status {
    if (new_index.contains(h)) return Status::Ok();
    Status gst = (this->*getter)(h, enc);
    if (gst.code == ErrorCode::kNotFound) return Status::Ok();
    if (!gst.ok()) return gst;
    rec.clear();
    rec.insert(rec.end(), h.bytes.begin(), h.bytes.end());
    rec.insert(rec.end(), enc.begin(), enc.end());
    PageRef ref;
    gst = new_file->append(std::span(rec), ref);
    if (!gst.ok()) return gst;
    new_index.emplace(h, ref);
    new_total += rec.size();
    return Status::Ok();
  };
  for (const Hash256& h : live) {
    st = copy_one(h, &PagedNodeStore::get);
    if (!st.ok()) return abort_compaction(st);
  }

  // Swap phase (locked): drain racing puts, make the new file durable,
  // point the manifest at it, and retire the old file.
  std::string old_path;
  {
    std::scoped_lock lk(mu_);
    for (const Hash256& h : puts_during_compaction_) {
      st = copy_one(h, &PagedNodeStore::get_impl);
      if (!st.ok()) {
        compacting_ = false;
        puts_during_compaction_.clear();
        return st;
      }
    }
    st = new_file->sync();
    if (st.ok()) {
      const std::uint64_t old_total = total_record_bytes_;
      old_path = file_->path();
      file_seq_ = new_seq;
      file_ = std::move(new_file);
      index_ = std::move(new_index);
      total_record_bytes_ = new_total;
      st = write_manifest_locked(durable_root_, durable_height_);
      ++stats_.compactions;
      stats_.compacted_bytes +=
          old_total > new_total ? old_total - new_total : 0;
      stats_.nodes = index_.size();
    }
    compacting_ = false;
    puts_during_compaction_.clear();
  }
  if (!st.ok()) return st;
  return PageFile::unlink(old_path);
}

std::string PagedNodeStore::data_file_path() const {
  std::scoped_lock lk(mu_);
  return file_->path();
}

std::uint64_t PagedNodeStore::file_seq() const {
  std::scoped_lock lk(mu_);
  return file_seq_;
}

std::size_t PagedNodeStore::node_count() const {
  std::scoped_lock lk(mu_);
  return index_.size();
}

Status PagedNodeStore::verify_all_pages() const {
  std::scoped_lock lk(mu_);
  return file_->scan(
      [](const PageRef&, std::span<const std::uint8_t>) -> Status {
        return Status::Ok();
      });
}

}  // namespace blockpilot::db
