#include "db/page_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/assert.hpp"

namespace blockpilot::db {

namespace {

void store_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_u32(p, static_cast<std::uint32_t>(v));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

Status io_error(const char* what, const std::string& path) {
  return Status::error(ErrorCode::kIo, std::string(what) + " failed for " +
                                           path + ": " + std::strerror(errno));
}

}  // namespace

std::uint64_t PageFile::page_checksum(std::span<const std::uint8_t> page) {
  // FNV-1a64 over the page with the checksum field treated as zero.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < page.size(); ++i) {
    const bool in_checksum_field = i >= 16 && i < 24;
    h ^= in_checksum_field ? 0 : page[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

PageFile::PageFile(std::string path, int fd, const Options& opts)
    : path_(std::move(path)), fd_(fd), page_size_(opts.page_size) {
  BP_ASSERT_MSG(page_size_ > kPageHeaderSize + kRecordHeaderSize,
                "page size too small");
  cur_page_.assign(page_size_, 0);
}

PageFile::~PageFile() {
  // Deliberately no implicit sync: destruction without sync() models a
  // crash — the in-memory partial page is lost, sealed pages survive.
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::open(const std::string& path, const Options& opts,
                      std::uint64_t sealed_pages,
                      std::unique_ptr<PageFile>& out) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return io_error("open", path);
  std::unique_ptr<PageFile> file(new PageFile(path, fd, opts));

  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) return io_error("lseek", path);
  const std::uint64_t whole_pages =
      static_cast<std::uint64_t>(end) / opts.page_size;
  if (sealed_pages == UINT64_MAX) {
    sealed_pages = whole_pages;  // trust every whole page (fresh file: 0)
  } else if (whole_pages < sealed_pages) {
    return Status::error(ErrorCode::kCorruptPage,
                         "page file shorter than its manifest: " + path);
  }
  // Drop the untrusted tail (torn final page and/or appends the manifest
  // never acknowledged) so new appends start on a clean boundary.
  if (static_cast<std::uint64_t>(end) !=
      sealed_pages * opts.page_size) {
    if (::ftruncate(fd, static_cast<off_t>(sealed_pages * opts.page_size)) !=
        0)
      return io_error("ftruncate", path);
  }
  file->sealed_pages_ = sealed_pages;
  file->start_page(0);
  out = std::move(file);
  return Status::Ok();
}

void PageFile::start_page(std::uint32_t flags) {
  std::memset(cur_page_.data(), 0, cur_page_.size());
  cur_used_ = 0;
  cur_flags_ = flags;
}

Status PageFile::write_page(std::uint32_t page_no,
                            std::span<const std::uint8_t> page) {
  const off_t at = static_cast<off_t>(page_no) * static_cast<off_t>(page_size_);
  std::size_t done = 0;
  while (done < page.size()) {
    const ssize_t n =
        ::pwrite(fd_, page.data() + done, page.size() - done, at + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("pwrite", path_);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status PageFile::seal_current_page(std::uint32_t flags_of_next) {
  BP_ASSERT(cur_used_ > 0);
  std::uint8_t* hdr = cur_page_.data();
  store_u32(hdr, kMagic);
  store_u32(hdr + 4, static_cast<std::uint32_t>(sealed_pages_));
  store_u32(hdr + 8, cur_used_);
  store_u32(hdr + 12, cur_flags_);
  store_u64(hdr + 16, 0);
  store_u64(hdr + 16, page_checksum(cur_page_));
  const Status st =
      write_page(static_cast<std::uint32_t>(sealed_pages_), cur_page_);
  if (!st.ok()) return st;
  ++sealed_pages_;
  start_page(flags_of_next);
  return Status::Ok();
}

Status PageFile::append(std::span<const std::uint8_t> record, PageRef& ref) {
  const std::size_t cap = payload_capacity();
  const std::size_t total = kRecordHeaderSize + record.size();

  if (total <= cap) {  // ordinary record: whole within one page
    if (cur_used_ + total > cap) {
      const Status st = seal_current_page(0);
      if (!st.ok()) return st;
    }
    ref = PageRef{static_cast<std::uint32_t>(sealed_pages_), cur_used_};
    std::uint8_t* payload = cur_page_.data() + kPageHeaderSize;
    store_u32(payload + cur_used_, static_cast<std::uint32_t>(record.size()));
    std::memcpy(payload + cur_used_ + kRecordHeaderSize, record.data(),
                record.size());
    cur_used_ += static_cast<std::uint32_t>(total);
    return Status::Ok();
  }

  // Jumbo span: the record opens a fresh kJumboStart page and continues
  // through kJumboCont pages; every spanned page is sealed immediately so
  // the span is contiguous and the next record starts a clean page.
  if (record.size() > (std::size_t{1} << 30))
    return Status::error(ErrorCode::kTooLarge, "record exceeds 1 GiB");
  if (cur_used_ > 0) {
    const Status st = seal_current_page(0);
    if (!st.ok()) return st;
  }
  cur_flags_ = kFlagJumboStart;
  ref = PageRef{static_cast<std::uint32_t>(sealed_pages_), 0};
  std::uint8_t* payload = cur_page_.data() + kPageHeaderSize;
  store_u32(payload, static_cast<std::uint32_t>(record.size()));
  std::size_t copied = 0;
  cur_used_ = kRecordHeaderSize;
  while (copied < record.size()) {
    const std::size_t room = cap - cur_used_;
    const std::size_t take = std::min(room, record.size() - copied);
    std::memcpy(cur_page_.data() + kPageHeaderSize + cur_used_,
                record.data() + copied, take);
    cur_used_ += static_cast<std::uint32_t>(take);
    copied += take;
    if (copied < record.size()) {
      const Status st = seal_current_page(kFlagJumboCont);
      if (!st.ok()) return st;
    }
  }
  return seal_current_page(0);
}

Status PageFile::sync() {
  if (cur_used_ > 0) {
    const Status st = seal_current_page(0);
    if (!st.ok()) return st;
  }
  if (::fsync(fd_) != 0) return io_error("fsync", path_);
  return Status::Ok();
}

Status PageFile::load_page(std::uint32_t page_no, Bytes& page) const {
  if (page_no >= sealed_pages_)
    return Status::error(ErrorCode::kNotFound,
                         "page " + std::to_string(page_no) + " not sealed");
  page.resize(page_size_);
  const off_t at = static_cast<off_t>(page_no) * static_cast<off_t>(page_size_);
  std::size_t done = 0;
  while (done < page_size_) {
    const ssize_t n = ::pread(fd_, page.data() + done, page_size_ - done,
                              at + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("pread", path_);
    }
    if (n == 0)
      return Status::error(ErrorCode::kCorruptPage,
                           "short read at page " + std::to_string(page_no));
    done += static_cast<std::size_t>(n);
  }
  if (load_u32(page.data()) != kMagic ||
      load_u32(page.data() + 4) != page_no ||
      load_u32(page.data() + 8) > payload_capacity() ||
      load_u64(page.data() + 16) != page_checksum(page))
    return Status::error(
        ErrorCode::kCorruptPage,
        "checksum/header mismatch at page " + std::to_string(page_no));
  return Status::Ok();
}

Status PageFile::read(const PageRef& ref, Bytes& out) const {
  // The current partial page is readable too (pre-sync readers).
  Bytes stored;
  std::uint32_t used, flags;
  const std::uint8_t* payload;
  if (ref.page == sealed_pages_ && cur_used_ > 0) {
    payload = cur_page_.data() + kPageHeaderSize;
    used = cur_used_;
    flags = cur_flags_;
  } else {
    const Status st = load_page(ref.page, stored);
    if (!st.ok()) return st;
    payload = stored.data() + kPageHeaderSize;
    used = load_u32(stored.data() + 8);
    flags = load_u32(stored.data() + 12);
  }

  if ((flags & kFlagJumboStart) != 0) {
    if (ref.offset != 0)
      return Status::error(ErrorCode::kCorruptPage,
                           "ref into the middle of a jumbo span");
    const std::uint32_t len = load_u32(payload);
    out.clear();
    out.reserve(len);
    std::size_t have =
        std::min<std::size_t>(len, used - kRecordHeaderSize);
    out.insert(out.end(), payload + kRecordHeaderSize,
               payload + kRecordHeaderSize + have);
    std::uint32_t page_no = ref.page;
    while (out.size() < len) {
      ++page_no;
      Bytes cont;
      const Status st = load_page(page_no, cont);
      if (!st.ok()) return st;
      if ((load_u32(cont.data() + 12) & kFlagJumboCont) == 0)
        return Status::error(ErrorCode::kCorruptPage,
                             "jumbo span not continued at page " +
                                 std::to_string(page_no));
      const std::uint32_t cont_used = load_u32(cont.data() + 8);
      const std::size_t take =
          std::min<std::size_t>(len - out.size(), cont_used);
      out.insert(out.end(), cont.data() + kPageHeaderSize,
                 cont.data() + kPageHeaderSize + take);
    }
    return Status::Ok();
  }

  if (ref.offset + kRecordHeaderSize > used)
    return Status::error(ErrorCode::kNotFound, "ref past page payload");
  const std::uint32_t len = load_u32(payload + ref.offset);
  if (ref.offset + kRecordHeaderSize + len > used)
    return Status::error(ErrorCode::kCorruptPage,
                         "record overruns page payload");
  out.assign(payload + ref.offset + kRecordHeaderSize,
             payload + ref.offset + kRecordHeaderSize + len);
  return Status::Ok();
}

Status PageFile::scan(
    const std::function<Status(const PageRef&, std::span<const std::uint8_t>)>&
        fn) const {
  const std::size_t cap = payload_capacity();
  Bytes page, record;
  std::uint64_t p = 0;
  const bool partial = cur_used_ > 0;
  while (p < sealed_pages_ + (partial ? 1 : 0)) {
    const std::uint8_t* payload;
    std::uint32_t used, flags;
    if (p < sealed_pages_) {
      const Status st = load_page(static_cast<std::uint32_t>(p), page);
      if (!st.ok()) return st;
      payload = page.data() + kPageHeaderSize;
      used = load_u32(page.data() + 8);
      flags = load_u32(page.data() + 12);
    } else {
      payload = cur_page_.data() + kPageHeaderSize;
      used = cur_used_;
      flags = cur_flags_;
    }
    if ((flags & kFlagJumboCont) != 0)
      return Status::error(ErrorCode::kCorruptPage,
                           "dangling jumbo continuation at page " +
                               std::to_string(p));
    if ((flags & kFlagJumboStart) != 0) {
      const PageRef ref{static_cast<std::uint32_t>(p), 0};
      const Status st = read(ref, record);
      if (!st.ok()) return st;
      const Status fs = fn(ref, std::span<const std::uint8_t>(record));
      if (!fs.ok()) return fs;
      // Skip the continuation pages of this span.
      const std::size_t len = record.size();
      const std::size_t in_first = cap - kRecordHeaderSize;
      const std::size_t rest = len > in_first ? len - in_first : 0;
      p += 1 + (rest + cap - 1) / cap;
      continue;
    }
    std::uint32_t off = 0;
    while (off + kRecordHeaderSize <= used) {
      const std::uint32_t len = load_u32(payload + off);
      if (off + kRecordHeaderSize + len > used)
        return Status::error(ErrorCode::kCorruptPage,
                             "record overruns payload at page " +
                                 std::to_string(p));
      const PageRef ref{static_cast<std::uint32_t>(p), off};
      const Status fs =
          fn(ref, std::span<const std::uint8_t>(
                      payload + off + kRecordHeaderSize, len));
      if (!fs.ok()) return fs;
      off += kRecordHeaderSize + len;
    }
    ++p;
  }
  return Status::Ok();
}

Status PageFile::unlink(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    return io_error("unlink", path);
  return Status::Ok();
}

}  // namespace blockpilot::db
