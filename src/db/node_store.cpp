#include "db/node_store.hpp"

namespace blockpilot::db {

Status InMemoryNodeStore::put(const Hash256& hash,
                              std::span<const std::uint8_t> encoding) {
  std::scoped_lock lk(mu_);
  const auto [it, inserted] = nodes_.try_emplace(
      hash, std::vector<std::uint8_t>(encoding.begin(), encoding.end()));
  if (!inserted) {
    ++stats_.dup_puts;
    return Status::Ok();
  }
  ++stats_.puts;
  ++stats_.nodes;
  stats_.node_bytes += encoding.size();
  return Status::Ok();
}

Status InMemoryNodeStore::get(const Hash256& hash,
                              std::vector<std::uint8_t>& out) const {
  std::scoped_lock lk(mu_);
  const auto it = nodes_.find(hash);
  if (it == nodes_.end()) {
    ++stats_.get_misses;
    return Status::error(ErrorCode::kNotFound, "node not in store");
  }
  ++stats_.gets;
  out = it->second;
  return Status::Ok();
}

bool InMemoryNodeStore::contains(const Hash256& hash) const {
  std::scoped_lock lk(mu_);
  return nodes_.contains(hash);
}

Status InMemoryNodeStore::commit_root(const Hash256& root,
                                      std::uint64_t height) {
  std::scoped_lock lk(mu_);
  durable_root_ = root;
  durable_height_ = height;
  ++stats_.roots_committed;
  return Status::Ok();
}

Hash256 InMemoryNodeStore::durable_root() const {
  std::scoped_lock lk(mu_);
  return durable_root_;
}

std::uint64_t InMemoryNodeStore::durable_height() const {
  std::scoped_lock lk(mu_);
  return durable_height_;
}

NodeStore::Stats InMemoryNodeStore::stats() const {
  std::scoped_lock lk(mu_);
  return stats_;
}

std::future<ReadResult> AsyncReader::issue(const Hash256& hash) {
  auto task = [this, hash] {
    ReadResult r;
    r.status = store_.get(hash, r.encoding);
    return r;
  };
  if (pool_ == nullptr) {
    std::promise<ReadResult> p;
    p.set_value(task());
    return p.get_future();
  }
  auto promise = std::make_shared<std::promise<ReadResult>>();
  std::future<ReadResult> fut = promise->get_future();
  pool_->submit([task = std::move(task), promise]() mutable {
    promise->set_value(task());
  });
  return fut;
}

std::size_t AsyncReader::warm(
    std::span<const Hash256> hashes,
    std::function<void(std::span<const std::uint8_t>)> warm) {
  std::size_t issued = 0;
  auto warm_shared =
      std::make_shared<std::function<void(std::span<const std::uint8_t>)>>(
          std::move(warm));
  for (const Hash256& h : hashes) {
    auto fetch = [this, h, warm_shared] {
      std::vector<std::uint8_t> enc;
      if (store_.get(h, enc).ok())
        (*warm_shared)(std::span<const std::uint8_t>(enc));
    };
    if (pool_ == nullptr)
      fetch();
    else
      pool_->submit(std::move(fetch));
    ++issued;
  }
  return issued;
}

}  // namespace blockpilot::db
