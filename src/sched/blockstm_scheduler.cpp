#include "sched/blockstm_scheduler.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace blockpilot::sched {

BlockStmScheduler::BlockStmScheduler(std::size_t num_txns)
    : n_(num_txns), txns_(std::make_unique<TxnState[]>(num_txns)) {
  inflight_.reserve(64);
}

bool BlockStmScheduler::done() const noexcept {
  // Safe for idle workers: a worker holding a task keeps num_active_tasks_
  // nonzero, so the task holder itself never observes a premature "done"
  // and drives any remaining work to completion (see scheduler file
  // comment).  Other workers exiting on the narrow claim-race window only
  // shed tail parallelism.
  return num_active_tasks_.load(std::memory_order_seq_cst) == 0 &&
         execution_idx_.load(std::memory_order_seq_cst) >= n_ &&
         validation_idx_.load(std::memory_order_seq_cst) >= n_;
}

void BlockStmScheduler::track_begin(std::uint32_t txn) {
  std::scoped_lock lk(inflight_mu_);
  inflight_.push_back(txn);
}

void BlockStmScheduler::track_end(std::uint32_t txn) {
  std::scoped_lock lk(inflight_mu_);
  const auto it = std::find(inflight_.begin(), inflight_.end(), txn);
  BP_ASSERT(it != inflight_.end());
  *it = inflight_.back();
  inflight_.pop_back();
}

void BlockStmScheduler::decrease_execution_idx(std::uint32_t to) {
  std::uint32_t cur = execution_idx_.load(std::memory_order_seq_cst);
  while (cur > to &&
         !execution_idx_.compare_exchange_weak(cur, to,
                                               std::memory_order_seq_cst)) {
  }
}

void BlockStmScheduler::decrease_validation_idx(std::uint32_t to) {
  std::uint32_t cur = validation_idx_.load(std::memory_order_seq_cst);
  while (cur > to &&
         !validation_idx_.compare_exchange_weak(cur, to,
                                                std::memory_order_seq_cst)) {
  }
  // Loop exit with cur > to means our CAS performed the lowering (cur holds
  // the value we swapped out); cur <= to means someone else got there first.
  if (cur > to) validation_waves_.fetch_add(1, std::memory_order_relaxed);
}

BlockStmScheduler::Task BlockStmScheduler::try_incarnate(std::uint32_t txn) {
  TxnState& t = txns_[txn];
  std::scoped_lock lk(t.mu);
  if (t.status.load(std::memory_order_relaxed) == Status::kReady) {
    t.status.store(Status::kExecuting, std::memory_order_relaxed);
    track_begin(txn);
    return {Task::Kind::kExecute, txn,
            t.incarnation.load(std::memory_order_relaxed)};
  }
  return {};
}

BlockStmScheduler::Task BlockStmScheduler::next_task() {
  num_active_tasks_.fetch_add(1, std::memory_order_seq_cst);
  // Prefer validation whenever it trails execution: catching
  // mis-speculation early keeps the abort cascade short (paper Alg. 3).
  if (validation_idx_.load(std::memory_order_seq_cst) <
      execution_idx_.load(std::memory_order_seq_cst)) {
    const std::uint32_t idx =
        validation_idx_.fetch_add(1, std::memory_order_seq_cst);
    if (idx < n_) {
      TxnState& t = txns_[idx];
      std::scoped_lock lk(t.mu);
      if (t.status.load(std::memory_order_relaxed) == Status::kExecuted) {
        track_begin(idx);
        return {Task::Kind::kValidate, idx,
                t.incarnation.load(std::memory_order_relaxed)};
      }
      // Not validatable right now; a later finish_execution re-lowers the
      // counter when this transaction becomes EXECUTED.
    }
  } else if (execution_idx_.load(std::memory_order_seq_cst) < n_) {
    const std::uint32_t idx =
        execution_idx_.fetch_add(1, std::memory_order_seq_cst);
    if (idx < n_) {
      Task task = try_incarnate(idx);
      if (task) return task;
    }
  }
  num_active_tasks_.fetch_sub(1, std::memory_order_seq_cst);
  return {};
}

BlockStmScheduler::Task BlockStmScheduler::finish_execution(
    std::uint32_t txn, std::uint32_t incarnation, bool wrote_new_location) {
  std::vector<std::uint32_t> resumed;
  {
    TxnState& t = txns_[txn];
    std::scoped_lock lk(t.mu);
    BP_ASSERT(t.status.load(std::memory_order_relaxed) == Status::kExecuting);
    BP_ASSERT(t.incarnation.load(std::memory_order_relaxed) == incarnation);
    t.status.store(Status::kExecuted, std::memory_order_release);
    resumed.swap(t.dependents);
  }
  if (!resumed.empty()) {
    std::uint32_t min_resumed = resumed.front();
    for (const std::uint32_t dep : resumed) {
      TxnState& d = txns_[dep];
      std::scoped_lock lk(d.mu);
      BP_ASSERT(d.status.load(std::memory_order_relaxed) ==
                Status::kSuspended);
      d.status.store(Status::kReady, std::memory_order_relaxed);
      min_resumed = std::min(min_resumed, dep);
    }
    decrease_execution_idx(min_resumed);
  }
  if (validation_idx_.load(std::memory_order_seq_cst) > txn) {
    if (wrote_new_location) {
      // New write path: higher transactions that already validated may
      // have missed it — re-cover from here (the validation wave).
      decrease_validation_idx(txn);
    } else {
      // Same write set as the previous incarnation: only this
      // transaction's own reads need rechecking.  Task stays in flight.
      return {Task::Kind::kValidate, txn, incarnation};
    }
  }
  track_end(txn);
  num_active_tasks_.fetch_sub(1, std::memory_order_seq_cst);
  return {};
}

bool BlockStmScheduler::try_validation_abort(std::uint32_t txn,
                                             std::uint32_t incarnation) {
  TxnState& t = txns_[txn];
  std::scoped_lock lk(t.mu);
  if (t.status.load(std::memory_order_relaxed) == Status::kExecuted &&
      t.incarnation.load(std::memory_order_relaxed) == incarnation) {
    t.status.store(Status::kAborting, std::memory_order_relaxed);
    aborts_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;  // stale validation: the incarnation already moved on
}

BlockStmScheduler::Task BlockStmScheduler::finish_validation(
    std::uint32_t txn, std::uint32_t incarnation, bool aborted) {
  if (aborted) {
    {
      TxnState& t = txns_[txn];
      std::scoped_lock lk(t.mu);
      BP_ASSERT(t.status.load(std::memory_order_relaxed) ==
                Status::kAborting);
      BP_ASSERT(t.incarnation.load(std::memory_order_relaxed) == incarnation);
      t.status.store(Status::kReady, std::memory_order_relaxed);
      t.incarnation.store(incarnation + 1, std::memory_order_relaxed);
    }
    // Everything after the aborted transaction may have read its (now
    // ESTIMATE) writes: re-cover the validation wave behind it.
    decrease_validation_idx(txn + 1);
    if (execution_idx_.load(std::memory_order_seq_cst) > txn) {
      // The execution counter already passed it: re-execute here rather
      // than strand the incarnation.  Task stays in flight.
      Task task = try_incarnate(txn);
      if (task) {
        track_end(txn);  // try_incarnate opened the replacement entry
        return task;
      }
    }
  }
  track_end(txn);
  num_active_tasks_.fetch_sub(1, std::memory_order_seq_cst);
  return {};
}

bool BlockStmScheduler::add_dependency(std::uint32_t txn,
                                       std::uint32_t blocking_txn) {
  BP_ASSERT(blocking_txn < txn);
  TxnState& b = txns_[blocking_txn];
  TxnState& t = txns_[txn];
  std::scoped_lock lk(b.mu, t.mu);
  if (b.status.load(std::memory_order_relaxed) == Status::kExecuted)
    return false;  // resolved in the meantime — caller re-executes now
  BP_ASSERT(t.status.load(std::memory_order_relaxed) == Status::kExecuting);
  t.status.store(Status::kSuspended, std::memory_order_relaxed);
  b.dependents.push_back(txn);
  suspensions_.fetch_add(1, std::memory_order_relaxed);
  track_end(txn);
  num_active_tasks_.fetch_sub(1, std::memory_order_seq_cst);
  return true;
}

std::uint32_t BlockStmScheduler::stable_prefix() const {
  std::scoped_lock lk(inflight_mu_);
  std::uint64_t limit =
      std::min<std::uint64_t>(execution_idx_.load(std::memory_order_seq_cst),
                              validation_idx_.load(std::memory_order_seq_cst));
  for (const std::uint32_t i : inflight_)
    limit = std::min<std::uint64_t>(limit, i);
  limit = std::min<std::uint64_t>(limit, n_);
  while (stable_watermark_ < limit &&
         txns_[stable_watermark_].status.load(std::memory_order_acquire) ==
             Status::kExecuted) {
    ++stable_watermark_;
  }
  return stable_watermark_;
}

}  // namespace blockpilot::sched
