// Per-transaction dependency DAG — a finer schedule than the paper's
// connected-component subgraphs.
//
// The paper serializes each conflict subgraph on one thread (§4.3), which
// over-serializes: within a subgraph, transaction j only has to wait for
// the specific earlier transactions whose writes it observes (or whose
// reads/writes it overwrites), not for every member of the component.
// This module builds that precise happens-before DAG (the structure
// Dickerson et al.'s fork-join validators and Anjana et al.'s dependency
// graphs use) and evaluates the schedule it permits — an extension beyond
// the paper, quantified by bench_ablation_dag.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/profile.hpp"
#include "sched/depgraph.hpp"

namespace blockpilot::sched {

struct TxDag {
  /// Direct predecessors of each transaction (deduplicated, ascending).
  std::vector<std::vector<std::size_t>> preds;
  /// Per-transaction gas (copied from the profile for scheduling).
  std::vector<std::uint64_t> gas;

  std::size_t size() const noexcept { return preds.size(); }

  /// Longest gas-weighted path through the DAG: the makespan floor no
  /// schedule can beat with any number of workers.
  std::uint64_t critical_path_gas() const;
};

/// Builds the happens-before DAG.  Edges: a transaction depends on the
/// latest earlier writer of every key it touches, and a writer additionally
/// depends on all readers of that key since its previous writer
/// (RAW, WAW and WAR respectively).
TxDag build_tx_dag(const chain::BlockProfile& profile,
                   Granularity granularity);

/// Virtual makespan of list-scheduling the DAG on `workers` threads:
/// transactions start at max(ready-of-deps, earliest-free-worker), in block
/// order (deterministic; block order is a valid topological order).
std::uint64_t dag_makespan(const TxDag& dag, std::size_t workers);

}  // namespace blockpilot::sched
