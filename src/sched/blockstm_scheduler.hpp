// BlockStmScheduler: the collaborative scheduler of Block-STM (Gelashvili
// et al., PPoPP 2022, Algorithms 2-4), driving the proposer's second
// execution engine (core/engine_blockstm.cpp, docs/blockstm.md).
//
// The block's transactions carry a preset order (their pool pop order); the
// scheduler hands out two kinds of tasks over that order:
//
//  * execution tasks — run incarnation `i` of a transaction against the
//    multi-version memory (state::MvMemory);
//  * validation tasks — re-read an executed incarnation's read set and
//    abort it if any observed version changed.
//
// Both task streams advance through atomic counters (execution_idx /
// validation_idx) that workers claim from with fetch_add; validation is
// preferred whenever it trails execution, so mis-speculation is caught as
// early as possible.  An abort makes the transaction's next incarnation
// READY and *lowers* validation_idx — the validation wave re-covers every
// transaction whose reads could have observed the aborted writes.  A
// re-execution that writes a location its previous incarnation did not
// write also lowers validation_idx (new writes can invalidate higher
// transactions that already validated); one that only rewrites its old
// locations needs just its own revalidation, returned directly to the
// finishing worker.
//
// Dependencies: an execution that reads an ESTIMATE marker (the footprint
// of an aborted lower transaction, see MvMemory) suspends itself on the
// writing transaction instead of spinning; finish_execution resumes all
// waiters.  add_dependency fails (and the caller simply re-executes) when
// the blocking transaction finished in the meantime — the race the paper
// resolves the same way.
//
// Every task handed out must be closed by exactly one finish_* call (or
// parked via a successful add_dependency); the scheduler is done when both
// counters have passed the block and no task is in flight.  The stable
// prefix — transactions [0, p) executed, validated, and no longer
// reachable by any counter or in-flight task — only ever grows (every
// counter decrease is performed by an in-flight task whose index bounds
// the prefix), which is what lets the DES engine lazily commit receipts in
// order while the tail is still speculating.
//
// Thread-safe: counters are seq_cst atomics, per-transaction status is
// guarded by a per-transaction mutex (the paper's per-txn locks), and the
// in-flight index multiset by one small mutex.  The virtual-time engine
// drives it from a single thread (determinism); the host-threads engine
// from real workers (the `stm` TSan gate).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace blockpilot::sched {

class BlockStmScheduler {
 public:
  struct Task {
    enum class Kind : std::uint8_t { kNone = 0, kExecute, kValidate };
    Kind kind = Kind::kNone;
    std::uint32_t txn = 0;
    std::uint32_t incarnation = 0;

    explicit operator bool() const noexcept { return kind != Kind::kNone; }
  };

  explicit BlockStmScheduler(std::size_t num_txns);

  /// True once every transaction is executed and validated and no task is
  /// in flight.  Monotone: once done, stays done.
  bool done() const noexcept;

  /// Claims the next task (validation preferred when it trails execution).
  /// kNone means "nothing claimable right now" — the caller should retry
  /// (host threads) or idle until another worker finishes (DES).
  Task next_task();

  /// Closes an execution task.  `wrote_new_location` = this incarnation
  /// wrote a key its predecessor incarnation did not (triggers a
  /// validation wave over higher transactions instead of a single
  /// revalidation).  Resumes transactions suspended on this one.  May
  /// return a follow-up validation task for the same transaction, which
  /// keeps the task in flight.
  Task finish_execution(std::uint32_t txn, std::uint32_t incarnation,
                        bool wrote_new_location);

  /// Tries to abort an executed incarnation (validation failure).  Fails
  /// if the incarnation moved on — a stale validation, ignored.
  bool try_validation_abort(std::uint32_t txn, std::uint32_t incarnation);

  /// Closes a validation task.  `aborted` must be the result of a
  /// successful try_validation_abort for this (txn, incarnation).  May
  /// return the follow-up execution task (the aborted transaction's next
  /// incarnation), which keeps the task in flight.
  Task finish_validation(std::uint32_t txn, std::uint32_t incarnation,
                         bool aborted);

  /// Suspends `txn` (currently executing) on `blocking_txn`'s completion.
  /// Returns false — and parks nothing — if the blocking transaction
  /// already finished executing: the caller re-executes immediately with
  /// the same incarnation.  On true, the caller's task is closed (the
  /// resume path re-issues the execution).
  bool add_dependency(std::uint32_t txn, std::uint32_t blocking_txn);

  /// Transactions [0, stable_prefix()) are executed, validated, and can no
  /// longer be aborted by anything in flight — safe to commit lazily.
  /// Monotone (see file comment).
  std::uint32_t stable_prefix() const;

  /// Total incarnation aborts (== re-executions scheduled).
  std::uint64_t aborts() const noexcept {
    return aborts_.load(std::memory_order_relaxed);
  }

  /// Times validation_idx was actually lowered (a wave re-covering the
  /// transactions behind an abort or a grown write set).  With an exact
  /// pre-seeded footprint (MvMemory::seed_estimates from an honest block
  /// profile) no wave fires at all; a stale profile degrades to extra
  /// waves — the observable the seeding tests gate on.
  std::uint64_t validation_waves() const noexcept {
    return validation_waves_.load(std::memory_order_relaxed);
  }

  /// Executions parked on a dependency (successful add_dependency calls).
  std::uint64_t suspensions() const noexcept {
    return suspensions_.load(std::memory_order_relaxed);
  }

  /// True while another next_task() call could still claim work: a null
  /// task with claimable() true was a wasted cursor claim (the target was
  /// mid-execution), not cursor exhaustion.  Real workers just spin; a
  /// discrete-event caller uses this to retry in zero virtual time instead
  /// of idling its virtual worker until the next completion event.
  bool claimable() const noexcept {
    return execution_idx_.load(std::memory_order_seq_cst) < n_ ||
           validation_idx_.load(std::memory_order_seq_cst) <
               execution_idx_.load(std::memory_order_seq_cst);
  }

  std::size_t size() const noexcept { return n_; }

 private:
  enum class Status : std::uint8_t {
    kReady = 0,     // next incarnation waiting for an execution task
    kExecuting,     // an execution task holds it
    kSuspended,     // parked on a dependency (no task in flight for it)
    kExecuted,      // latest incarnation finished; validatable
    kAborting,      // validation failure claimed it; re-execution pending
  };

  struct alignas(64) TxnState {
    mutable std::mutex mu;  // guards transitions + dependents
    // Atomic so stable_prefix() can read without taking the txn lock
    // (avoids an inflight_mu_/txn-mutex order inversion); all transitions
    // still happen under mu.
    std::atomic<Status> status{Status::kReady};
    std::atomic<std::uint32_t> incarnation{0};
    std::vector<std::uint32_t> dependents;  // suspended on this txn
  };

  Task try_incarnate(std::uint32_t txn);
  void decrease_execution_idx(std::uint32_t to);
  void decrease_validation_idx(std::uint32_t to);
  void track_begin(std::uint32_t txn);
  void track_end(std::uint32_t txn);

  const std::size_t n_;
  std::unique_ptr<TxnState[]> txns_;
  std::atomic<std::uint32_t> execution_idx_{0};
  std::atomic<std::uint32_t> validation_idx_{0};
  std::atomic<std::uint64_t> num_active_tasks_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> validation_waves_{0};
  std::atomic<std::uint64_t> suspensions_{0};

  // In-flight task indices (one entry per open task), for stable_prefix.
  mutable std::mutex inflight_mu_;
  std::vector<std::uint32_t> inflight_;       // unsorted multiset
  mutable std::uint32_t stable_watermark_ = 0;
};

}  // namespace blockpilot::sched
