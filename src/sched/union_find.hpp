// Disjoint-set forest with union by size and path halving.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "support/assert.hpp"

namespace blockpilot::sched {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) noexcept {
    BP_ASSERT(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns the new root.
  std::size_t unite(std::size_t a, std::size_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return a;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return a;
  }

  bool connected(std::size_t a, std::size_t b) noexcept {
    return find(a) == find(b);
  }

  /// Size of x's component.
  std::size_t component_size(std::size_t x) noexcept { return size_[find(x)]; }

  std::size_t element_count() const noexcept { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace blockpilot::sched
