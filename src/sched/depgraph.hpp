// Dependency-graph construction and subgraph scheduling (paper §4.3,
// "Preparation Phase").
//
// The validator builds a conflict graph over the block's transactions from
// the proposer's block profile: two transactions conflict when they touch a
// common key and at least one of the touches is a write (RAW, WAR or WAW —
// read-read sharing is harmless).  Connected components of that graph are
// the paper's "subgraphs"; transactions inside one subgraph must execute
// serially in block order, distinct subgraphs run in parallel (Fig. 4).
//
// Conflict granularity is configurable:
//  * kAccount (paper default): every key coarsens to its owning address —
//    "conflicts are detected from the account level because account
//    counters (e.g., balance) are changed in every transaction";
//  * kKey: exact balance/nonce/storage-cell keys (finer; fewer false
//    conflicts).  bench_ablation_granularity quantifies the difference.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/profile.hpp"
#include "sched/union_find.hpp"

namespace blockpilot::sched {

enum class Granularity : std::uint8_t {
  kAccount,  // paper's validator default
  kKey,      // exact StateKey
};

/// One connected component of the conflict graph.
struct Subgraph {
  std::vector<std::size_t> tx_indices;  // ascending block order
  std::uint64_t total_gas = 0;          // scheduling weight
};

struct DependencyGraph {
  std::vector<Subgraph> subgraphs;  // sorted by total_gas descending
  std::size_t tx_count = 0;

  /// Size of the largest subgraph as a fraction of the block's transactions
  /// (the x-axis of Fig. 8; blocks average 27.5 % in the paper).
  double largest_subgraph_ratio() const noexcept;

  /// Gas of the heaviest subgraph — the critical path no schedule can beat.
  std::uint64_t critical_path_gas() const noexcept;

  std::uint64_t total_gas() const noexcept;
};

/// Builds the conflict graph from a block profile.
DependencyGraph build_dependency_graph(const chain::BlockProfile& profile,
                                       Granularity granularity);

/// Gas-weighted LPT (longest-processing-time-first) assignment of subgraphs
/// onto `threads` workers: heaviest subgraph first, each to the currently
/// least-loaded worker (§4.3: "the scheduler assigns conflict-free jobs to
/// threads that consume less gas").  Returns per-thread transaction lists,
/// each sorted ascending so in-thread execution follows block order.
struct ThreadPlan {
  std::vector<std::vector<std::size_t>> per_thread;  // tx indices
  std::vector<std::uint64_t> load;                   // gas per thread
};

ThreadPlan lpt_schedule(const DependencyGraph& graph, std::size_t threads);

}  // namespace blockpilot::sched
