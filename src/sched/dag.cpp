#include "sched/dag.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <utility>

#include "support/assert.hpp"

namespace blockpilot::sched {
namespace {

using state::StateKey;

/// Last-access bookkeeping per key while sweeping the block in order.
struct KeyState {
  std::size_t last_writer = SIZE_MAX;
  std::vector<std::size_t> readers_since_write;
};

template <typename Key, typename Project>
TxDag build_with(const chain::BlockProfile& profile, Project project) {
  const std::size_t n = profile.txs.size();
  TxDag dag;
  dag.preds.resize(n);
  dag.gas.resize(n);

  std::unordered_map<Key, KeyState> keys;
  for (std::size_t j = 0; j < n; ++j) {
    const chain::TxProfile& tx = profile.txs[j];
    dag.gas[j] = tx.gas_used;
    auto& preds = dag.preds[j];

    for (const StateKey& key : tx.reads) {
      auto& ks = keys[project(key)];
      if (ks.last_writer != SIZE_MAX) preds.push_back(ks.last_writer);  // RAW
      ks.readers_since_write.push_back(j);
    }
    for (const auto& [key, value] : tx.writes) {
      auto& ks = keys[project(key)];
      // Guard j != last_writer: a transaction writing two keys that
      // project to the same coarse key (e.g. balance + nonce of one
      // account) must not depend on itself.
      if (ks.last_writer != SIZE_MAX && ks.last_writer != j)
        preds.push_back(ks.last_writer);  // WAW
      for (const std::size_t r : ks.readers_since_write)
        if (r != j) preds.push_back(r);  // WAR
      ks.last_writer = j;
      ks.readers_since_write.clear();
    }

    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    BP_ASSERT(preds.empty() || preds.back() < j);  // block order is topo
  }
  return dag;
}

}  // namespace

TxDag build_tx_dag(const chain::BlockProfile& profile,
                   Granularity granularity) {
  if (granularity == Granularity::kAccount) {
    return build_with<Address>(profile,
                               [](const StateKey& k) { return k.addr; });
  }
  return build_with<StateKey>(profile, [](const StateKey& k) { return k; });
}

std::uint64_t TxDag::critical_path_gas() const {
  std::vector<std::uint64_t> finish(size(), 0);
  std::uint64_t best = 0;
  for (std::size_t j = 0; j < size(); ++j) {
    std::uint64_t ready = 0;
    for (const std::size_t p : preds[j]) ready = std::max(ready, finish[p]);
    finish[j] = ready + gas[j];
    best = std::max(best, finish[j]);
  }
  return best;
}

std::uint64_t dag_makespan(const TxDag& dag, std::size_t workers) {
  BP_ASSERT(workers > 0);
  const std::size_t n = dag.size();
  if (n == 0) return 0;

  // Successor lists + in-degrees for the ready-set sweep.
  std::vector<std::vector<std::size_t>> succs(n);
  std::vector<std::size_t> pending(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    pending[j] = dag.preds[j].size();
    for (const std::size_t p : dag.preds[j]) succs[p].push_back(j);
  }

  // Ready transactions, heaviest first (LPT flavor; index breaks ties for
  // determinism).
  auto heavier = [&](std::size_t a, std::size_t b) {
    if (dag.gas[a] != dag.gas[b]) return dag.gas[a] < dag.gas[b];
    return a > b;
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(heavier)>
      ready(heavier);
  for (std::size_t j = 0; j < n; ++j)
    if (pending[j] == 0) ready.push(j);

  // (finish_time, tx) completion events, earliest first.
  using Event = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  // Worker free times, earliest first.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      worker_free;
  for (std::size_t w = 0; w < workers; ++w) worker_free.push(0);

  std::uint64_t makespan = 0;
  std::size_t scheduled = 0;
  std::uint64_t now = 0;
  while (scheduled < n) {
    // Release every transaction whose predecessors finished by `now`.
    while (!events.empty() && events.top().first <= now) {
      const std::size_t done = events.top().second;
      events.pop();
      for (const std::size_t s : succs[done])
        if (--pending[s] == 0) ready.push(s);
    }
    if (ready.empty()) {
      // Idle until the next completion releases work.
      BP_ASSERT(!events.empty());
      now = std::max(now, events.top().first);
      continue;
    }
    const std::uint64_t free_at = worker_free.top();
    if (free_at > now) {
      now = free_at;
      continue;  // re-release at the later time before assigning
    }
    worker_free.pop();
    const std::size_t tx = ready.top();
    ready.pop();
    const std::uint64_t finish = now + dag.gas[tx];
    events.emplace(finish, tx);
    worker_free.push(finish);
    makespan = std::max(makespan, finish);
    ++scheduled;
  }
  return makespan;
}

}  // namespace blockpilot::sched
