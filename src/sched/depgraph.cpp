#include "sched/depgraph.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "support/assert.hpp"

namespace blockpilot::sched {
namespace {

using state::StateKey;

// Coarsened key: either the full StateKey or just the address.
struct KeyUse {
  std::vector<std::size_t> readers;
  std::vector<std::size_t> writers;
};

template <typename Key, typename Hash>
void collect_and_unite(const chain::BlockProfile& profile, UnionFind& uf,
                       Hash /*tag*/,
                       const std::function<Key(const StateKey&)>& project) {
  std::unordered_map<Key, KeyUse, Hash> uses;
  for (std::size_t i = 0; i < profile.txs.size(); ++i) {
    const auto& tx = profile.txs[i];
    for (const auto& key : tx.reads) uses[project(key)].readers.push_back(i);
    for (const auto& [key, value] : tx.writes)
      uses[project(key)].writers.push_back(i);
  }
  for (auto& [key, use] : uses) {
    if (use.writers.empty()) continue;  // read-read sharing: no conflict
    // Union everything that touches a written key: covers RAW, WAR, WAW.
    const std::size_t anchor = use.writers.front();
    for (const std::size_t w : use.writers) uf.unite(anchor, w);
    for (const std::size_t r : use.readers) uf.unite(anchor, r);
  }
}

}  // namespace

double DependencyGraph::largest_subgraph_ratio() const noexcept {
  if (tx_count == 0) return 0.0;
  std::size_t largest = 0;
  for (const auto& sg : subgraphs)
    largest = std::max(largest, sg.tx_indices.size());
  return static_cast<double>(largest) / static_cast<double>(tx_count);
}

std::uint64_t DependencyGraph::critical_path_gas() const noexcept {
  std::uint64_t best = 0;
  for (const auto& sg : subgraphs) best = std::max(best, sg.total_gas);
  return best;
}

std::uint64_t DependencyGraph::total_gas() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& sg : subgraphs) sum += sg.total_gas;
  return sum;
}

DependencyGraph build_dependency_graph(const chain::BlockProfile& profile,
                                       Granularity granularity) {
  const std::size_t n = profile.txs.size();
  UnionFind uf(n);

  if (granularity == Granularity::kAccount) {
    collect_and_unite<Address, std::hash<Address>>(
        profile, uf, std::hash<Address>{},
        [](const StateKey& k) { return k.addr; });
  } else {
    collect_and_unite<StateKey, std::hash<StateKey>>(
        profile, uf, std::hash<StateKey>{},
        [](const StateKey& k) { return k; });
  }

  // Group transactions by component root, preserving block order inside
  // each subgraph (components visit indices ascending).
  std::unordered_map<std::size_t, std::size_t> root_to_subgraph;
  DependencyGraph graph;
  graph.tx_count = n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.find(i);
    const auto [it, inserted] =
        root_to_subgraph.try_emplace(root, graph.subgraphs.size());
    if (inserted) graph.subgraphs.emplace_back();
    Subgraph& sg = graph.subgraphs[it->second];
    sg.tx_indices.push_back(i);
    sg.total_gas += profile.txs[i].gas_used;
  }

  // Heaviest-first order: the LPT scheduler consumes subgraphs in this
  // order ("the subgraph with the heaviest path is selected first", §5.4).
  std::sort(graph.subgraphs.begin(), graph.subgraphs.end(),
            [](const Subgraph& a, const Subgraph& b) {
              if (a.total_gas != b.total_gas) return a.total_gas > b.total_gas;
              return a.tx_indices.front() < b.tx_indices.front();
            });
  return graph;
}

ThreadPlan lpt_schedule(const DependencyGraph& graph, std::size_t threads) {
  BP_ASSERT(threads > 0);
  ThreadPlan plan;
  plan.per_thread.resize(threads);
  plan.load.assign(threads, 0);

  for (const Subgraph& sg : graph.subgraphs) {
    // Least-loaded thread; linear scan is fine for <= 16 threads.
    std::size_t best = 0;
    for (std::size_t t = 1; t < threads; ++t)
      if (plan.load[t] < plan.load[best]) best = t;
    auto& bucket = plan.per_thread[best];
    bucket.insert(bucket.end(), sg.tx_indices.begin(), sg.tx_indices.end());
    plan.load[best] += sg.total_gas;
  }
  // In-thread execution must follow block order so that same-subgraph
  // transactions observe their predecessors' writes.
  for (auto& bucket : plan.per_thread) std::sort(bucket.begin(), bucket.end());
  return plan;
}

}  // namespace blockpilot::sched
