// Transaction pool: the node's admission front.
//
// Grown from the original gas-price priority heap into a real pool that can
// sit under a continuous submission firehose:
//
//  * Per-sender nonce ladders.  Each sender owns a nonce -> entry map.  A
//    slot (sender, nonce) holds at most one transaction; re-submissions of
//    an occupied slot go through replace-by-fee (a configurable minimum
//    price bump) and the displaced transaction is never observable again.
//  * Pending vs queued.  With `enforce_nonce_order` set, only the sender's
//    head-of-line nonce (contiguous from the account's base nonce) is
//    eligible for pop(); later nonces queue until the gap fills.  Popping a
//    nonce promotes its successor immediately, so a sender keeps one
//    transaction schedulable at a time and popped nonces are monotone.
//    With the flag clear (the default) every admitted transaction competes
//    in the global price order — the original heap semantics the figure
//    benches were calibrated against (same-sender ordering then emerges
//    from the proposer's kNotReady deferral path).
//  * Byte- and count-capped occupancy.  When a cap would be exceeded, the
//    lowest-priority resident transaction (lowest gas price, newest
//    arrival) is evicted to make room — but only if the incoming
//    transaction outranks it; otherwise admission fails pool-full.  In
//    nonce-order mode, a transaction that would become its sender's
//    schedulable head bypasses the outrank check (pending beats queued):
//    without that rule a saturated pool of gap-stranded ladders deadlocks,
//    because the cheap hole-fillers that would restart service can never
//    outbid the queued entries blocking them.
//  * Typed admission results and exact conservation counters: every
//    accepted transaction is accounted for as committed, dropped, evicted,
//    replaced, stale-dropped, or still resident (ladder / deferred /
//    in-flight) — the invariant the ingestion soak tests assert.
//
// Selection is by gas price, ties broken by admission order, matching the
// paper's "transactions with higher gas prices ... are chosen first"
// (§4.2).  Aborted transactions re-enter via push_back() with their
// ORIGINAL admission sequence, so a retry keeps its place among equal-price
// peers instead of falling to the back of the tiebreak.
//
// A deferral mechanism handles kNotReady transactions (same-sender nonce
// gaps): a deferred transaction re-enters the ladder after the pool next
// observes progress (a commit), avoiding a busy retry loop on a
// transaction whose predecessor is still executing.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/transaction.hpp"

namespace blockpilot::txpool {

/// Outcome of one admission attempt.
enum class AdmissionOutcome : std::uint8_t {
  kAccepted = 0,           // entered the pool in a fresh (sender, nonce) slot
  kReplaced,               // entered the pool, displacing the slot's resident
  kRejectedUnderpriced,    // slot occupied and the fee bump was insufficient
  kRejectedNonceTooLow,    // nonce below the sender's committed base nonce
  kRejectedPoolFull,       // caps reached and the tx outranks no resident
  kRejectedDuplicate,      // identical tx, or its slot is mid-execution
};

const char* to_string(AdmissionOutcome o) noexcept;

struct AdmissionResult {
  AdmissionOutcome outcome = AdmissionOutcome::kRejectedDuplicate;
  /// Residents evicted to make room for this admission.
  std::uint32_t evicted = 0;

  bool admitted() const noexcept {
    return outcome == AdmissionOutcome::kAccepted ||
           outcome == AdmissionOutcome::kReplaced;
  }
};

struct TxPoolConfig {
  /// Maximum resident transactions (ladder + deferred); 0 = unlimited.
  std::size_t max_txs = 0;
  /// Maximum resident occupancy in bytes (see TxPool::tx_bytes); 0 =
  /// unlimited.
  std::size_t max_bytes = 0;
  /// Replace-by-fee threshold: a replacement must bid at least
  /// old_price * (100 + replace_bump_percent) / 100.
  unsigned replace_bump_percent = 10;
  /// Gate pop() on per-sender nonce contiguity (see file comment).  The
  /// ingestion front enables this; the replay benches keep it off to
  /// preserve the calibrated heap semantics.
  bool enforce_nonce_order = false;
  /// Buffer evicted transactions for take_evicted().  The node loop uses
  /// this to model client re-submission (a sender whose transaction was
  /// dropped re-submits at the same nonce — without that feedback, an
  /// evicted tail leaves a permanent arrival-side nonce hole).  Off by
  /// default: with no consumer the buffer would grow unbounded.
  bool collect_evicted = false;
};

/// Aggregate pool counters.  All monotone except the occupancy gauges.
struct TxPoolStats {
  // Admission outcomes.
  std::uint64_t accepted = 0;   // entered the pool (fresh slot OR replacement)
  std::uint64_t replaced = 0;   // residents displaced by replace-by-fee
  std::uint64_t rejected_underpriced = 0;
  std::uint64_t rejected_nonce_too_low = 0;
  std::uint64_t rejected_pool_full = 0;
  std::uint64_t rejected_duplicate = 0;
  // Exits.
  std::uint64_t committed = 0;      // acknowledged via committed()
  std::uint64_t dropped = 0;        // acknowledged via dropped()
  std::uint64_t evicted = 0;        // displaced by capacity pressure
  std::uint64_t stale_dropped = 0;  // nonce fell below the committed base
  // Occupancy gauges.
  std::size_t occupancy_bytes = 0;  // ladder + deferred
  std::size_t pending = 0;          // pop()-eligible ladder entries
  std::size_t queued = 0;           // ladder entries awaiting a nonce gap
  std::size_t deferred = 0;         // parked by the proposer (kNotReady)
  std::size_t in_flight = 0;        // popped, not yet acknowledged

  /// Conservation: every accepted transaction is exactly one of committed,
  /// dropped, evicted, replaced, stale-dropped, or still held.
  bool conserved() const noexcept {
    return accepted == committed + dropped + evicted + replaced +
                           stale_dropped + pending + queued + deferred +
                           in_flight;
  }
};

class TxPool {
 public:
  TxPool() = default;
  explicit TxPool(TxPoolConfig config) : config_(config) {}

  /// Approximate wire footprint used for byte-capped occupancy: a fixed
  /// envelope charge plus calldata.  Deliberately cheaper than a full RLP
  /// encode — admission sits on the submission hot path.
  static std::size_t tx_bytes(const chain::Transaction& tx) noexcept {
    return 96 + tx.data.size();
  }

  /// Admits a transaction (see AdmissionOutcome for the decision space).
  AdmissionResult add(chain::Transaction tx);

  /// Bulk admission; returns how many entered the pool.
  std::size_t add_all(std::vector<chain::Transaction> txs);

  /// Pops the highest-priority eligible transaction; nullopt when nothing
  /// is eligible (deferred/queued entries do not count).  The popped
  /// transaction is tracked as in-flight until the caller acknowledges it
  /// via committed()/dropped() or returns it via push_back()/defer().
  std::optional<chain::Transaction> pop();

  /// Returns an aborted transaction for retry (conflict abort path).  The
  /// entry keeps its original admission sequence, so its priority tiebreak
  /// — and therefore retry order among equal-price peers — is stable.
  void push_back(chain::Transaction tx);

  /// Parks a kNotReady transaction until the pool next observes progress.
  void defer(chain::Transaction tx);

  /// Signals that some transaction committed; deferred entries re-enter
  /// the ladder (their predecessor may be the one that just committed).
  void progress();

  /// Acknowledges the commit of an in-flight transaction: advances the
  /// sender's base nonce (entries at or below it become stale and are
  /// dropped), then releases deferred entries as progress() does.
  void committed(const Address& sender, std::uint64_t nonce);

  /// Acknowledges that the proposer permanently discarded an in-flight
  /// transaction (invalid, or its predecessor never arrived).
  void dropped(const Address& sender, std::uint64_t nonce);

  /// Seeds a sender's base nonce from authoritative account state; nonces
  /// below it are rejected nonce-too-low and resident entries below it are
  /// dropped as stale.
  void note_sender_nonce(const Address& sender, std::uint64_t account_nonce);

  /// Drains the evicted-transaction buffer (empty unless
  /// config.collect_evicted): the re-submission feedback channel.
  std::vector<chain::Transaction> take_evicted();

  /// Resident count: ladder + deferred (in-flight transactions are out).
  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::size_t in_flight() const;

  TxPoolStats stats() const;
  const TxPoolConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    chain::Transaction tx;
    std::uint64_t seq = 0;     // admission order tiebreak (stable priority)
    std::size_t bytes = 0;
  };

  /// Global priority key.  Strict weak ordering: gas price desc, then
  /// admission order.  (sender, nonce) ride along to locate the entry.
  struct PrioKey {
    U256 price;
    std::uint64_t seq = 0;
    Address sender;
    std::uint64_t nonce = 0;
  };
  struct PrioCmp {
    bool operator()(const PrioKey& a, const PrioKey& b) const noexcept {
      if (a.price != b.price) return a.price > b.price;  // max price first
      return a.seq < b.seq;
    }
  };

  struct SenderState {
    std::map<std::uint64_t, Entry> ladder;  // nonce -> resident entry
    std::uint64_t base = 0;        // lowest admissible nonce
    bool base_known = false;       // base seeded by note/commit (else inferred)
    std::uint64_t next_sched = 0;  // head-of-line nonce (nonce-order mode)
    bool sched_init = false;
    bool has_ready = false;        // ladder[ready_nonce] is in ready_
    std::uint64_t ready_nonce = 0;
  };

  struct InFlight {
    std::uint64_t seq = 0;
    std::size_t bytes = 0;
  };

  using Slot = std::pair<Address, std::uint64_t>;

  static PrioKey key_of(const Address& sender, std::uint64_t nonce,
                        const Entry& e) noexcept {
    return PrioKey{e.tx.gas_price, e.seq, sender, nonce};
  }

  // All helpers below require mu_ held.
  void insert_entry_locked(const Address& sender, SenderState& s,
                           std::uint64_t nonce, Entry entry);
  void remove_entry_locked(const Address& sender, SenderState& s,
                           std::uint64_t nonce);
  void sync_ready_locked(const Address& sender, SenderState& s);
  void reinsert_locked(chain::Transaction tx, std::uint64_t seq,
                       std::size_t bytes);
  bool evict_one_locked(bool allow_ready);
  bool evict_for_locked(const PrioKey& incoming, std::size_t incoming_bytes,
                        bool unlocks_sender, std::uint32_t& evicted);
  void trim_to_caps_locked();
  void drop_stale_locked(const Address& sender, SenderState& s);
  void release_deferred_locked();
  AdmissionResult add_locked(chain::Transaction tx);

  TxPoolConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<Address, SenderState> senders_;
  std::set<PrioKey, PrioCmp> ready_;  // pop() source in nonce-order mode
  std::set<PrioKey, PrioCmp> all_;    // every ladder entry (eviction index;
                                      // pop() source in legacy mode)
  std::map<Slot, InFlight> in_flight_;
  std::vector<Entry> deferred_;
  std::vector<chain::Transaction> evicted_buf_;  // collect_evicted only
  std::uint64_t next_seq_ = 0;
  std::size_t ladder_count_ = 0;
  std::size_t occupancy_bytes_ = 0;  // ladder + deferred
  TxPoolStats stats_;
};

}  // namespace blockpilot::txpool
