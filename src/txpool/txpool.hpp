// Transaction pool with gas-price priority.
//
// The proposer's worker threads pop transactions concurrently (Algorithm 1
// line 7, "PopHeap"), execute them optimistically, and push aborted ones
// back ("PushHeap").  Selection is by gas price, ties broken by sender
// nonce then insertion order, matching the paper's "transactions with
// higher gas prices ... are chosen first" (§4.2).
//
// A deferral mechanism handles kNotReady transactions (same-sender nonce
// gaps): a deferred transaction re-enters the heap after the pool's commit
// counter advances, avoiding a busy retry loop on a transaction whose
// predecessor is still executing.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "chain/transaction.hpp"

namespace blockpilot::txpool {

class TxPool {
 public:
  TxPool() = default;

  /// Adds a transaction to the pending pool.
  void add(chain::Transaction tx);
  void add_all(std::vector<chain::Transaction> txs);

  /// Pops the highest-priority pending transaction; nullopt when the pool
  /// (including deferred entries) is empty.
  std::optional<chain::Transaction> pop();

  /// Returns an aborted transaction for retry (conflict abort path).
  void push_back(chain::Transaction tx);

  /// Parks a kNotReady transaction until progress() is next called.
  void defer(chain::Transaction tx);

  /// Signals that a transaction committed; deferred entries re-enter the
  /// heap (their predecessor may be the one that just committed).
  void progress();

  /// Pending + deferred count.
  std::size_t size() const;
  bool empty() const { return size() == 0; }

 private:
  struct Entry {
    chain::Transaction tx;
    std::uint64_t seq;  // insertion order tiebreak (stable priority)
  };
  // Strict weak ordering: gas price desc, then insertion order.  Per-sender
  // nonce order is enforced by the kNotReady deferral path, not the heap
  // (a nonce term here would break transitivity across senders).
  struct Compare {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.tx.gas_price != b.tx.gas_price)
        return a.tx.gas_price < b.tx.gas_price;  // max-heap on gas price
      return a.seq > b.seq;
    }
  };

  mutable std::mutex mu_;
  std::priority_queue<Entry, std::vector<Entry>, Compare> heap_;
  std::vector<chain::Transaction> deferred_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace blockpilot::txpool
