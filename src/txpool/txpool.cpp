#include "txpool/txpool.hpp"

namespace blockpilot::txpool {

void TxPool::add(chain::Transaction tx) {
  std::scoped_lock lk(mu_);
  heap_.push(Entry{std::move(tx), next_seq_++});
}

void TxPool::add_all(std::vector<chain::Transaction> txs) {
  std::scoped_lock lk(mu_);
  for (auto& tx : txs) heap_.push(Entry{std::move(tx), next_seq_++});
}

std::optional<chain::Transaction> TxPool::pop() {
  std::scoped_lock lk(mu_);
  // Deferred entries re-enter ONLY via progress(): popping them back out
  // immediately would let a worker spin pop->defer->pop on a nonce-gapped
  // transaction without any commit in between.
  if (heap_.empty()) return std::nullopt;
  chain::Transaction tx = heap_.top().tx;
  heap_.pop();
  return tx;
}

void TxPool::push_back(chain::Transaction tx) {
  std::scoped_lock lk(mu_);
  heap_.push(Entry{std::move(tx), next_seq_++});
}

void TxPool::defer(chain::Transaction tx) {
  std::scoped_lock lk(mu_);
  deferred_.push_back(std::move(tx));
}

void TxPool::progress() {
  std::scoped_lock lk(mu_);
  for (auto& tx : deferred_) heap_.push(Entry{std::move(tx), next_seq_++});
  deferred_.clear();
}

std::size_t TxPool::size() const {
  std::scoped_lock lk(mu_);
  return heap_.size() + deferred_.size();
}

}  // namespace blockpilot::txpool
