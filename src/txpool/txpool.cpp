#include "txpool/txpool.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace blockpilot::txpool {

const char* to_string(AdmissionOutcome o) noexcept {
  switch (o) {
    case AdmissionOutcome::kAccepted: return "accepted";
    case AdmissionOutcome::kReplaced: return "replaced";
    case AdmissionOutcome::kRejectedUnderpriced: return "rejected-underpriced";
    case AdmissionOutcome::kRejectedNonceTooLow: return "rejected-nonce-too-low";
    case AdmissionOutcome::kRejectedPoolFull: return "rejected-pool-full";
    case AdmissionOutcome::kRejectedDuplicate: return "rejected-duplicate";
  }
  return "unknown";
}

void TxPool::insert_entry_locked(const Address& sender, SenderState& s,
                                 std::uint64_t nonce, Entry entry) {
  BP_ASSERT(!s.ladder.contains(nonce));
  occupancy_bytes_ += entry.bytes;
  ++ladder_count_;
  all_.insert(key_of(sender, nonce, entry));
  s.ladder.emplace(nonce, std::move(entry));
  if (!s.sched_init || nonce < s.next_sched) {
    s.next_sched = nonce;
    s.sched_init = true;
  }
  sync_ready_locked(sender, s);
}

void TxPool::remove_entry_locked(const Address& sender, SenderState& s,
                                 std::uint64_t nonce) {
  auto it = s.ladder.find(nonce);
  BP_ASSERT(it != s.ladder.end());
  const PrioKey k = key_of(sender, nonce, it->second);
  all_.erase(k);
  if (s.has_ready && s.ready_nonce == nonce) {
    ready_.erase(k);
    s.has_ready = false;
  }
  occupancy_bytes_ -= it->second.bytes;
  --ladder_count_;
  s.ladder.erase(it);
}

void TxPool::sync_ready_locked(const Address& sender, SenderState& s) {
  if (!config_.enforce_nonce_order) return;  // legacy mode pops from all_
  const auto it = s.ladder.find(s.next_sched);
  if (s.has_ready) {
    if (it != s.ladder.end() && s.ready_nonce == s.next_sched) return;
    const Entry& cur = s.ladder.at(s.ready_nonce);
    ready_.erase(key_of(sender, s.ready_nonce, cur));
    s.has_ready = false;
  }
  if (it != s.ladder.end()) {
    ready_.insert(key_of(sender, s.next_sched, it->second));
    s.has_ready = true;
    s.ready_nonce = s.next_sched;
  }
}

bool TxPool::evict_for_locked(const PrioKey& incoming,
                              std::size_t incoming_bytes, bool unlocks_sender,
                              std::uint32_t& evicted) {
  const PrioCmp better;
  while ((config_.max_txs != 0 &&
          ladder_count_ + deferred_.size() + 1 > config_.max_txs) ||
         (config_.max_bytes != 0 &&
          occupancy_bytes_ + incoming_bytes > config_.max_bytes)) {
    if (all_.empty()) return false;
    // Make room only for a transaction that outranks the cheapest resident;
    // an equal-price newcomer loses the tiebreak (anti-spam: churning the
    // pool requires outbidding it).  Exception: a transaction that becomes
    // its sender's schedulable head is admitted regardless of price — a
    // schedulable transaction is worth more than any gap-stranded queued
    // entry, whatever that entry bid (geth's pending-beats-queued rule).
    // Without it a full pool deadlocks under overload: once every sender's
    // ladder has an eviction hole, nothing is pending, and the cheap
    // hole-filling re-submissions that would restart service can never
    // outbid the queued entries blocking them.
    if (!unlocks_sender && !better(incoming, *std::prev(all_.end())))
      return false;
    // A promotion-bypass admission may only displace gap-stranded entries —
    // letting it displace another schedulable head would be zero-sum churn
    // (see evict_one_locked); outbidding is the only way to do that.
    if (!evict_one_locked(/*allow_ready=*/!unlocks_sender)) return false;
    ++evicted;
  }
  return true;
}

bool TxPool::evict_one_locked(bool allow_ready) {
  if (all_.empty()) return false;  // only unevictable residents remain
  // In nonce-order mode, prefer victims whose eviction does not destroy a
  // schedulable head.  A sender holds queued entries iff some resident tail
  // is not a ready head, and ready_ holds exactly one entry per schedulable
  // sender — so ladder_count_ > ready_.size() is an O(1) witness that such
  // a victim exists.
  const bool have_non_head =
      !config_.enforce_nonce_order || ladder_count_ > ready_.size();
  if (!have_non_head && !allow_ready) return false;
  // The cheapest entry picks the victim SENDER, but the entry actually
  // evicted is that sender's highest resident nonce: evicting mid-ladder
  // would leave a hole no commit can ever close, permanently stranding the
  // sender's queued successors (geth evicts account tails for the same
  // reason).
  auto victim = std::prev(all_.end());  // cheapest resident
  if (have_non_head && config_.enforce_nonce_order) {
    // Walk up from the cheapest entry to the first sender whose tail is not
    // its schedulable head (usually the very first — gap-stranded ladders
    // cluster at the cheap end).
    while (true) {
      const SenderState& cs = senders_.at(victim->sender);
      const std::uint64_t tail = cs.ladder.rbegin()->first;
      if (!(cs.has_ready && cs.ready_nonce == tail)) break;
      BP_ASSERT(victim != all_.begin());
      --victim;
    }
  }
  const Address victim_sender = victim->sender;
  SenderState& vs = senders_.at(victim_sender);
  const std::uint64_t victim_nonce = vs.ladder.rbegin()->first;
  if (config_.collect_evicted)
    evicted_buf_.push_back(vs.ladder.at(victim_nonce).tx);
  remove_entry_locked(victim_sender, vs, victim_nonce);
  sync_ready_locked(victim_sender, vs);
  ++stats_.evicted;
  return true;
}

std::vector<chain::Transaction> TxPool::take_evicted() {
  std::scoped_lock lk(mu_);
  return std::exchange(evicted_buf_, {});
}

void TxPool::trim_to_caps_locked() {
  while (((config_.max_txs != 0 &&
           ladder_count_ + deferred_.size() > config_.max_txs) ||
          (config_.max_bytes != 0 && occupancy_bytes_ > config_.max_bytes)) &&
         evict_one_locked(/*allow_ready=*/true)) {
  }
}

void TxPool::drop_stale_locked(const Address& sender, SenderState& s) {
  while (!s.ladder.empty() && s.ladder.begin()->first < s.base) {
    remove_entry_locked(sender, s, s.ladder.begin()->first);
    ++stats_.stale_dropped;
  }
}

AdmissionResult TxPool::add_locked(chain::Transaction tx) {
  const Address from = tx.from;
  const std::uint64_t nonce = tx.nonce;
  SenderState& s = senders_[from];

  if (s.base_known && nonce < s.base) {
    ++stats_.rejected_nonce_too_low;
    return {AdmissionOutcome::kRejectedNonceTooLow, 0};
  }
  // A slot that is mid-execution (popped) or parked by the proposer is not
  // replaceable: the old transaction may still commit.
  if (in_flight_.contains(Slot{from, nonce})) {
    ++stats_.rejected_duplicate;
    return {AdmissionOutcome::kRejectedDuplicate, 0};
  }
  for (const Entry& d : deferred_) {
    if (d.tx.from == from && d.tx.nonce == nonce) {
      ++stats_.rejected_duplicate;
      return {AdmissionOutcome::kRejectedDuplicate, 0};
    }
  }

  const auto resident = s.ladder.find(nonce);
  if (resident != s.ladder.end()) {
    if (resident->second.tx == tx) {
      ++stats_.rejected_duplicate;
      return {AdmissionOutcome::kRejectedDuplicate, 0};
    }
    // Replace-by-fee: the newcomer must outbid the resident by the
    // configured bump.  Replacement is atomic under mu_ — the displaced
    // transaction is gone before the new one becomes poppable, so no
    // interleaving can observe both.
    const U256 need =
        resident->second.tx.gas_price * U256{100 + config_.replace_bump_percent};
    if (tx.gas_price * U256{100} < need) {
      ++stats_.rejected_underpriced;
      return {AdmissionOutcome::kRejectedUnderpriced, 0};
    }
    Entry entry{std::move(tx), next_seq_++, 0};
    entry.bytes = tx_bytes(entry.tx);
    remove_entry_locked(from, s, nonce);
    ++stats_.replaced;
    ++stats_.accepted;
    // Replacements bypass the capacity check: the occupancy delta is
    // bounded by the calldata size difference, and failing here would have
    // to resurrect the displaced resident.
    insert_entry_locked(from, s, nonce, std::move(entry));
    return {AdmissionOutcome::kReplaced, 0};
  }

  Entry entry{std::move(tx), next_seq_++, 0};
  entry.bytes = tx_bytes(entry.tx);
  const PrioKey k = key_of(from, nonce, entry);
  // Would this transaction become the sender's schedulable head?  True when
  // the sender has no ready entry and the nonce lands at (or below) the
  // scheduling cursor — i.e. it fills the gap that is stalling the ladder.
  const bool unlocks_sender = config_.enforce_nonce_order && !s.has_ready &&
                              (!s.sched_init || nonce <= s.next_sched);
  std::uint32_t evicted = 0;
  if (!evict_for_locked(k, entry.bytes, unlocks_sender, evicted)) {
    ++stats_.rejected_pool_full;
    return {AdmissionOutcome::kRejectedPoolFull, evicted};
  }
  insert_entry_locked(from, s, nonce, std::move(entry));
  ++stats_.accepted;
  return {AdmissionOutcome::kAccepted, evicted};
}

AdmissionResult TxPool::add(chain::Transaction tx) {
  std::scoped_lock lk(mu_);
  return add_locked(std::move(tx));
}

std::size_t TxPool::add_all(std::vector<chain::Transaction> txs) {
  std::scoped_lock lk(mu_);
  std::size_t admitted = 0;
  for (auto& tx : txs)
    if (add_locked(std::move(tx)).admitted()) ++admitted;
  return admitted;
}

std::optional<chain::Transaction> TxPool::pop() {
  std::scoped_lock lk(mu_);
  // Deferred entries re-enter ONLY via progress()/committed(): popping them
  // back out immediately would let a worker spin pop->defer->pop on a
  // nonce-gapped transaction without any commit in between.
  const auto& src = config_.enforce_nonce_order ? ready_ : all_;
  if (src.empty()) return std::nullopt;
  const PrioKey k = *src.begin();
  SenderState& s = senders_.at(k.sender);
  const auto it = s.ladder.find(k.nonce);
  BP_ASSERT(it != s.ladder.end());
  Entry entry = std::move(it->second);
  all_.erase(k);
  if (s.has_ready && s.ready_nonce == k.nonce) {
    ready_.erase(k);
    s.has_ready = false;
  }
  s.ladder.erase(it);
  --ladder_count_;
  occupancy_bytes_ -= entry.bytes;
  in_flight_[Slot{k.sender, k.nonce}] = InFlight{entry.seq, entry.bytes};
  if (config_.enforce_nonce_order) {
    // Promote the successor: the sender keeps one schedulable transaction
    // at a time, so popped nonces are monotone absent push_back retries.
    s.next_sched = k.nonce + 1;
    s.sched_init = true;
    sync_ready_locked(k.sender, s);
  }
  return std::move(entry.tx);
}

void TxPool::reinsert_locked(chain::Transaction tx, std::uint64_t seq,
                             std::size_t bytes) {
  SenderState& s = senders_[tx.from];
  if (s.base_known && tx.nonce < s.base) {
    ++stats_.stale_dropped;  // committed past it while the retry was out
    return;
  }
  const Address from = tx.from;
  const std::uint64_t nonce = tx.nonce;
  insert_entry_locked(from, s, nonce, Entry{std::move(tx), seq, bytes});
  // A returning resident must re-enter even when the pool filled up while
  // it was out — discarding it would punch a hole in its sender's ladder.
  // Capacity is restored by evicting tails instead (possibly its own
  // sender's, or the returning transaction itself if it is a cheap tail).
  trim_to_caps_locked();
}

void TxPool::push_back(chain::Transaction tx) {
  std::scoped_lock lk(mu_);
  const auto f = in_flight_.find(Slot{tx.from, tx.nonce});
  std::uint64_t seq;
  std::size_t bytes;
  if (f != in_flight_.end()) {
    // Retry keeps its ORIGINAL admission seq: its priority tiebreak — and
    // therefore its place among equal-price peers — survives the abort.
    seq = f->second.seq;
    bytes = f->second.bytes;
    in_flight_.erase(f);
  } else {
    seq = next_seq_++;  // stray return: treat as a fresh admission
    bytes = tx_bytes(tx);
    ++stats_.accepted;
  }
  reinsert_locked(std::move(tx), seq, bytes);
}

void TxPool::defer(chain::Transaction tx) {
  std::scoped_lock lk(mu_);
  const auto f = in_flight_.find(Slot{tx.from, tx.nonce});
  std::uint64_t seq;
  std::size_t bytes;
  if (f != in_flight_.end()) {
    seq = f->second.seq;
    bytes = f->second.bytes;
    in_flight_.erase(f);
  } else {
    seq = next_seq_++;
    bytes = tx_bytes(tx);
    ++stats_.accepted;
  }
  const SenderState& s = senders_[tx.from];
  if (s.base_known && tx.nonce < s.base) {
    ++stats_.stale_dropped;
    return;
  }
  deferred_.push_back(Entry{std::move(tx), seq, bytes});
  occupancy_bytes_ += bytes;
  trim_to_caps_locked();
}

void TxPool::release_deferred_locked() {
  if (deferred_.empty()) return;
  std::vector<Entry> parked = std::move(deferred_);
  deferred_.clear();
  for (Entry& e : parked) {
    occupancy_bytes_ -= e.bytes;  // reinsert re-adds on success
    reinsert_locked(std::move(e.tx), e.seq, e.bytes);
  }
}

void TxPool::progress() {
  std::scoped_lock lk(mu_);
  release_deferred_locked();
}

void TxPool::committed(const Address& sender, std::uint64_t nonce) {
  std::scoped_lock lk(mu_);
  if (in_flight_.erase(Slot{sender, nonce}) != 0) {
    ++stats_.committed;
    SenderState& s = senders_[sender];
    s.base = std::max(s.base, nonce + 1);
    s.base_known = true;
    if (!s.sched_init || s.next_sched < s.base) {
      s.next_sched = s.base;
      s.sched_init = true;
    }
    drop_stale_locked(sender, s);
    sync_ready_locked(sender, s);
  }
  // A commit may unblock deferred same-sender successors.
  release_deferred_locked();
}

void TxPool::dropped(const Address& sender, std::uint64_t nonce) {
  std::scoped_lock lk(mu_);
  if (in_flight_.erase(Slot{sender, nonce}) != 0) ++stats_.dropped;
}

void TxPool::note_sender_nonce(const Address& sender,
                               std::uint64_t account_nonce) {
  std::scoped_lock lk(mu_);
  SenderState& s = senders_[sender];
  s.base = std::max(s.base, account_nonce);
  s.base_known = true;
  if (!s.sched_init || s.next_sched < s.base) {
    s.next_sched = s.base;
    s.sched_init = true;
  }
  drop_stale_locked(sender, s);
  sync_ready_locked(sender, s);
}

std::size_t TxPool::size() const {
  std::scoped_lock lk(mu_);
  return ladder_count_ + deferred_.size();
}

std::size_t TxPool::in_flight() const {
  std::scoped_lock lk(mu_);
  return in_flight_.size();
}

TxPoolStats TxPool::stats() const {
  std::scoped_lock lk(mu_);
  TxPoolStats out = stats_;
  out.occupancy_bytes = occupancy_bytes_;
  out.pending = config_.enforce_nonce_order ? ready_.size() : ladder_count_;
  out.queued = ladder_count_ - out.pending;
  out.deferred = deferred_.size();
  out.in_flight = in_flight_.size();
  return out;
}

}  // namespace blockpilot::txpool
