#include "support/rng.hpp"

#include <algorithm>
#include <cmath>

namespace blockpilot {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  BP_ASSERT(n > 0);
  BP_ASSERT(s >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against FP round-down at the tail
}

std::size_t ZipfSampler::operator()(Xoshiro256& rng) const noexcept {
  const double u = rng.uniform01();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace blockpilot
