// Lightweight always-on assertion macros for invariant checking.
//
// BP_ASSERT stays active in release builds: the concurrency-control code in
// this library relies on invariants (version monotonicity, commit-order
// consistency) whose silent violation would corrupt the ledger, so the cost
// of a predictable branch is accepted everywhere.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace blockpilot::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "BP_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace blockpilot::detail

#define BP_ASSERT(expr)                                                     \
  do {                                                                      \
    if (!(expr)) [[unlikely]]                                               \
      ::blockpilot::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define BP_ASSERT_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::blockpilot::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
