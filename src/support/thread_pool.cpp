#include "support/thread_pool.hpp"

#include <limits>

#include "support/assert.hpp"

namespace blockpilot {

thread_local std::size_t ThreadPool::worker_index_ =
    std::numeric_limits<std::size_t>::max();

ThreadPool::ThreadPool(std::size_t threads) {
  BP_ASSERT(threads > 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  // std::jthread joins on destruction; workers drain the queue before exit.
}

void ThreadPool::submit(Task task) {
  BP_ASSERT(task);
  {
    std::scoped_lock lk(mu_);
    BP_ASSERT_MSG(!stop_, "submit() after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(std::size_t index) {
  worker_index_ = index;
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::scoped_lock lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace blockpilot
