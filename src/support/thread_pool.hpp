// Fixed-size worker pool with a shared FIFO task queue.
//
// Follows C++ Core Guidelines CP.41 (minimize thread creation/destruction:
// threads are created once and reused for every block) and CP.24/CP.25
// (joining threads, no detach).  Tasks are type-erased std::move_only_function
// objects; submission never blocks, shutdown drains outstanding tasks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blockpilot {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers.  Each worker is given a stable index in
  /// [0, threads) accessible to tasks via ThreadPool::worker_index().
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution by any worker.
  void submit(Task task);

  /// Blocks until every submitted task has finished and the queue is empty.
  void wait_idle();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Total tasks completed since construction (monotone; lock-free read).
  std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Index of the calling pool worker, or SIZE_MAX when called from a
  /// non-pool thread.  Workers use this to maintain per-thread state
  /// (virtual-time ledgers, scratch EVMs) without false sharing.
  static std::size_t worker_index() noexcept { return worker_index_; }

 private:
  void worker_loop(std::size_t index);

  // Layout constraint: the queue mutex (and the state it guards), the
  // lock-free stats counter, and the cold worker handles each start on
  // their own 64-byte cache line.  Executor threads hammer the mutex line
  // on every pop while others increment the counter after every task —
  // co-locating them would put that traffic into one false-shared line and
  // show up directly in the proposer's Fig. 6 scaling curve.
  static constexpr std::size_t kCacheLine = 64;

  alignas(kCacheLine) std::mutex mu_;   // guards queue_/active_/stop_
  std::condition_variable cv_task_;     // signalled when a task is enqueued
  std::condition_variable cv_idle_;     // signalled when the pool drains
  std::deque<Task> queue_;
  std::size_t active_ = 0;              // tasks currently running
  bool stop_ = false;

  alignas(kCacheLine) std::atomic<std::uint64_t> tasks_executed_{0};

  alignas(kCacheLine) std::vector<std::jthread> workers_;

  static thread_local std::size_t worker_index_;
};

}  // namespace blockpilot
