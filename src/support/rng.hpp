// Deterministic pseudo-random number generation for workload synthesis.
//
// All workload generation in this repository must be reproducible from a
// 64-bit seed so that every benchmark row and test is bit-stable across
// runs and hosts.  We use splitmix64 for seeding and xoshiro256** as the
// main generator (both public-domain algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace blockpilot {

/// splitmix64: used to expand a single seed into generator state.
/// Advances `state` and returns the next 64-bit output.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x1234abcdULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    BP_ASSERT(bound > 0);
    // Lemire's multiply-shift rejection method (bias-free).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    BP_ASSERT(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s, n) sampler over ranks {0, .., n-1} using a precomputed inverse
/// CDF table.  Hotspot-contract popularity in real Ethereum workloads is
/// heavy-tailed; the paper's conflict statistics (largest subgraph ~27.5% of
/// a block) emerge from Zipf-distributed contract access.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draws a rank in [0, n); rank 0 is the most popular item.
  std::size_t operator()(Xoshiro256& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace blockpilot
