// Bounded multi-producer multi-consumer queue used for the validator
// pipeline's inter-stage channels (workers -> applier).
//
// A closed queue rejects further pushes and unblocks pending pops, letting a
// stage signal end-of-stream downstream (Fig. 3's "collect the results").
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "support/assert.hpp"

namespace blockpilot {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity = 1024) : capacity_(capacity) {
    BP_ASSERT(capacity > 0);
  }

  /// Blocks while the queue is full.  Returns false iff the queue was closed
  /// (the item is dropped in that case).
  bool push(T item) {
    std::unique_lock lk(mu_);
    cv_space_.wait(lk, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    cv_item_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns nullopt only on closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    cv_item_.wait(lk, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    cv_space_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when empty (whether or not closed).
  std::optional<T> try_pop() {
    std::scoped_lock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    cv_space_.notify_one();
    return item;
  }

  /// Marks end-of-stream: pending and future pops drain remaining items and
  /// then return nullopt; pushes fail.
  void close() {
    std::scoped_lock lk(mu_);
    closed_ = true;
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lk(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_item_;
  std::condition_variable cv_space_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace blockpilot
