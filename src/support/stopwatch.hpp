// Monotonic wall-clock stopwatch for benchmark instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace blockpilot {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time since construction or last reset, in nanoseconds.
  std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace blockpilot
