// Deterministic traffic harness: a multi-source submission firehose for the
// ingestion front.
//
// A TrafficGenerator owns N independent WorkloadGenerators (one per
// submission source, each confined to its own sender partition so sources
// never collide on a (sender, nonce) slot) and shapes their combined output
// into the arrival pathologies a live txpool must absorb:
//
//  * bursts        — a source emits a multiple of its per-tick budget
//  * nonce gaps    — a transaction is held back for a few ticks while its
//                    same-sender successors go out now (out-of-order arrival)
//  * replacements  — a recently emitted (sender, nonce) slot is re-submitted
//                    at a bumped fee (and, with its own probability, at an
//                    insufficient bump, to exercise the underpriced path)
//  * fee spikes    — gas prices multiply for a stretch of ticks, churning
//                    the pool's eviction order
//
// Like SimNetwork's FaultPlan, every decision flows from one seed: the
// stream for a given (profile, seed) is bit-identical across runs and hosts,
// which is what makes the ingestion soak tests replayable.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "chain/transaction.hpp"
#include "support/rng.hpp"
#include "workload/generator.hpp"

namespace blockpilot::workload {

struct TrafficProfile {
  std::string name = "steady";
  /// Base workload shape shared by every source (seed and sender partition
  /// are overridden per source).
  WorkloadConfig base;

  std::size_t sources = 4;        // independent submission streams
  std::size_t txs_per_tick = 8;   // per-source budget per tick

  double burst_chance = 0.0;      // per source per tick
  std::size_t burst_multiplier = 4;

  double gap_chance = 0.0;        // per tx: hold it back, successors go now
  std::size_t gap_delay_ticks = 3;

  double replace_chance = 0.0;    // per source per tick: re-bid a recent slot
  double underpriced_replace_chance = 0.0;  // fraction of re-bids under bump
  unsigned replace_bump_percent = 10;       // matches the pool's RBF knob

  double spike_chance = 0.0;      // per tick: enter a fee-spike stretch
  std::size_t spike_ticks = 5;
  std::uint64_t spike_multiplier = 8;

  /// Deterministically shuffle each tick's combined arrivals (interleaves
  /// the sources; without it arrivals are grouped per source).
  bool shuffle_arrivals = true;
};

/// Profiles swept by the soak tests and bench_ingest.
TrafficProfile traffic_steady();       // uniform trickle, no pathologies
TrafficProfile traffic_bursty();       // heavy bursts over a quiet baseline
TrafficProfile traffic_nonce_storm();  // gaps + airdrop chains: queued-heavy
TrafficProfile traffic_fee_frenzy();   // replacements + spikes: RBF/eviction

struct TrafficStats {
  std::uint64_t ticks = 0;
  std::uint64_t emitted = 0;        // transactions handed to the caller
  std::uint64_t bursts = 0;
  std::uint64_t gaps_injected = 0;  // held back for later release
  std::uint64_t gaps_released = 0;
  std::uint64_t replacements = 0;
  std::uint64_t underpriced_replacements = 0;
  std::uint64_t spike_ticks = 0;
};

class TrafficGenerator {
 public:
  TrafficGenerator(TrafficProfile profile, std::uint64_t seed);

  /// Genesis world state (identical across sources; seed-independent).
  state::WorldState genesis() const;

  /// One tick of arrivals across all sources, pathologies applied.
  std::vector<chain::Transaction> tick();

  /// Transactions still held back by gap injection (never emitted yet).
  std::size_t pending_delayed() const noexcept { return delayed_count_; }

  const TrafficProfile& profile() const noexcept { return profile_; }
  const TrafficStats& stats() const noexcept { return stats_; }

  /// Sender universe (the base config's EOA range) — lets the node seed
  /// authoritative base nonces before opening the firehose.
  std::size_t num_senders() const noexcept;
  Address sender(std::size_t i) const;

 private:
  struct Delayed {
    chain::Transaction tx;
    std::uint64_t release_tick = 0;
  };
  struct Source {
    WorkloadGenerator gen;
    std::deque<Delayed> held;
  };

  void emit(std::vector<chain::Transaction>& out, chain::Transaction tx);

  TrafficProfile profile_;
  Xoshiro256 rng_;  // traffic-shaping decisions only
  std::vector<Source> sources_;
  std::vector<chain::Transaction> recent_;  // replacement candidates (ring)
  std::size_t recent_next_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t spike_left_ = 0;
  std::size_t delayed_count_ = 0;
  TrafficStats stats_;
};

}  // namespace blockpilot::workload
