#include "workload/contracts.hpp"

#include "evm/assembler.hpp"

namespace blockpilot::workload {

using evm::Assembler;
using evm::Op;

Bytes token_contract() {
  Assembler a;
  // [op] = calldata word 0; dispatch: op == 0 -> transfer.
  a.push(0).op(Op::CALLDATALOAD);       // [op]
  a.op(Op::ISZERO);                     // [op==0]
  a.push_label("transfer").op(Op::JUMPI);
  a.push(0).push(0).op(Op::REVERT);     // unknown selector

  a.label("transfer");                  // JUMPDEST
  a.push(0x40).op(Op::CALLDATALOAD);    // [amt]
  a.op(Op::CALLER).op(Op::SLOAD);       // [fb, amt]
  a.op(Op::DUP2).op(Op::DUP2);          // [fb, amt, fb, amt]
  a.op(Op::LT);                         // [fb<amt, fb, amt]
  a.push_label("insufficient").op(Op::JUMPI);  // [fb, amt]
  a.op(Op::SUB);                        // [fb-amt]
  a.op(Op::CALLER).op(Op::SSTORE);      // {} balance[caller] = fb-amt
  a.push(0x20).op(Op::CALLDATALOAD);    // [to]
  a.op(Op::DUP1).op(Op::SLOAD);         // [tb, to]
  a.push(0x40).op(Op::CALLDATALOAD);    // [amt, tb, to]
  a.op(Op::ADD);                        // [tb+amt, to]
  a.op(Op::SWAP1);                      // [to, tb+amt]
  a.op(Op::SSTORE);                     // {} balance[to] = tb+amt
  // Transfer(from, to) event with the amount as data (ERC-20 shape).
  a.push(0x40).op(Op::CALLDATALOAD);    // [amt]
  a.push(0).op(Op::MSTORE);             // mem[0..32) = amt
  a.push(0x20).op(Op::CALLDATALOAD);    // [to]
  a.op(Op::CALLER);                     // [from, to]
  a.push(0x20).push(0);                 // [0, 0x20, from, to]
  a.op(Op::LOG2);                       // {} topics = (from, to)
  a.push(1).push(0).op(Op::MSTORE);     // mem[0..32) = 1
  a.push(0x20).push(0).op(Op::RETURN);

  a.label("insufficient");
  a.push(0).push(0).op(Op::REVERT);
  return a.assemble();
}

Bytes dex_contract() {
  Assembler a;
  a.push(0).op(Op::CALLDATALOAD);   // [in]
  a.push(0).op(Op::SLOAD);          // [r0, in]
  a.push(1).op(Op::SLOAD);          // [r1, r0, in]
  // out = in*r1 / (r0+in)  (constant-product quote)
  a.op(Op::DUP3).op(Op::DUP2).op(Op::MUL);  // [in*r1, r1, r0, in]
  a.op(Op::DUP4).op(Op::DUP4).op(Op::ADD);  // [r0+in, in*r1, r1, r0, in]
  a.op(Op::SWAP1).op(Op::DIV);              // [out, r1, r0, in]
  // reserves: slot1 = r1-out; slot0 = r0+in
  a.op(Op::DUP1).op(Op::SWAP2);             // [r1, out, out, r0, in]
  a.op(Op::SUB);                            // [r1-out, out, r0, in]
  a.push(1).op(Op::SSTORE);                 // [out, r0, in]
  a.op(Op::SWAP1);                          // [r0, out, in]
  a.op(Op::DUP3).op(Op::ADD);               // [r0+in, out, in]
  a.push(0).op(Op::SSTORE);                 // [out, in]
  // credit caller: slot(caller) += out
  a.op(Op::CALLER).op(Op::SLOAD);           // [bal, out, in]
  a.op(Op::DUP2).op(Op::ADD);               // [bal+out, out, in]
  a.op(Op::CALLER).op(Op::SSTORE);          // [out, in]
  // return out
  a.push(0).op(Op::MSTORE);                 // [in]
  a.push(0x20).push(0).op(Op::RETURN);
  return a.assemble();
}

Bytes counter_contract() {
  Assembler a;
  a.push(0).op(Op::SLOAD);
  a.push(1).op(Op::ADD);
  a.push(0).op(Op::SSTORE);
  a.op(Op::STOP);
  return a.assemble();
}

Bytes nft_contract() {
  Assembler a;
  a.push(0).op(Op::SLOAD);            // [id]
  a.op(Op::DUP1);                     // [id, id]
  a.push(1).op(Op::ADD);              // [id+1, id]
  a.push(0).op(Op::SSTORE);           // {} next-id = id+1        [id]
  a.op(Op::CALLER);                   // [caller, id]
  a.op(Op::DUP2);                     // [id, caller, id]
  a.push(U256{1}.shl(128));           // [2^128, id, caller, id]
  a.op(Op::ADD);                      // [slot, caller, id]
  a.op(Op::SSTORE);                   // {} owner[slot] = caller  [id]
  a.push(0).op(Op::MSTORE);           // mem[0..32) = id
  a.push(0x20).push(0).op(Op::RETURN);
  return a.assemble();
}

namespace {

void append_word(Bytes& out, const U256& word) {
  const auto be = word.to_be_bytes();
  out.insert(out.end(), be.begin(), be.end());
}

}  // namespace

Bytes token_transfer_calldata(const Address& to, const U256& amount) {
  Bytes data;
  data.reserve(96);
  append_word(data, U256{0});  // opcode 0 = transfer
  append_word(data, to.to_u256());
  append_word(data, amount);
  return data;
}

Bytes dex_swap_calldata(const U256& amount_in) {
  Bytes data;
  data.reserve(32);
  append_word(data, amount_in);
  return data;
}

}  // namespace blockpilot::workload
