// Workload contracts, hand-assembled EVM bytecode.
//
// Three contract families reproduce the conflict structure the paper
// measures on mainnet (§2.3, §5.5):
//  * Token — ERC-20-style transfer; balances live at storage slot =
//    holder address.  Conflicts arise only between transfers sharing a
//    holder (sparse storage conflicts).
//  * Dex — constant-product AMM swap; every swap reads and writes the
//    global reserve slots 0 and 1, so all swaps on one DEX form a single
//    conflict chain.  This is the "hotspot contract" (Uniswap pattern).
//  * Counter — increments slot 0; maximal-conflict microbenchmark.
#pragma once

#include <cstdint>
#include <vector>

#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::workload {

using Bytes = std::vector<std::uint8_t>;

/// Token runtime bytecode.  Calldata ABI:
///   word 0: opcode (0 = transfer; anything else reverts)
///   word 1: recipient address
///   word 2: amount
/// Balance of holder H is storage slot u256(H).  Reverts on insufficient
/// balance; returns 1 on success and emits a Transfer-style LOG2 with
/// topics (from, to) and the amount as data.
Bytes token_contract();

/// DEX runtime bytecode.  Calldata ABI:
///   word 0: amount_in
/// Pool reserves in slots 0 (base) and 1 (quote); the caller's accumulated
/// output is credited at slot u256(caller).  Returns amount_out.
Bytes dex_contract();

/// Counter runtime bytecode (no calldata): slot 0 += 1.
Bytes counter_contract();

/// NFT-mint runtime bytecode (no calldata): sequential-id mint, the "NFT
/// drop" pattern of §5.5.  Slot 0 holds the next token id; minting stores
/// the caller as owner of slot (id + 2^128) and bumps the counter — every
/// mint conflicts on slot 0, a tiny-footprint hotspot distinct from the
/// DEX's read-modify-write reserves.  Returns the minted id.
Bytes nft_contract();

// -- calldata builders matching the ABIs above --
Bytes token_transfer_calldata(const Address& to, const U256& amount);
Bytes dex_swap_calldata(const U256& amount_in);

}  // namespace blockpilot::workload
