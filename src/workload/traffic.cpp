#include "workload/traffic.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace blockpilot::workload {
namespace {

constexpr std::size_t kRecentRing = 64;  // replacement-candidate window

}  // namespace

TrafficProfile traffic_steady() {
  TrafficProfile p;
  p.name = "steady";
  p.base.jitter_block_size = false;
  return p;
}

TrafficProfile traffic_bursty() {
  TrafficProfile p;
  p.name = "bursty";
  p.base.jitter_block_size = false;
  p.txs_per_tick = 4;
  p.burst_chance = 0.25;
  p.burst_multiplier = 6;
  return p;
}

TrafficProfile traffic_nonce_storm() {
  TrafficProfile p;
  p.name = "nonce-storm";
  p.base.jitter_block_size = false;
  // Airdrop chains make long same-sender nonce runs; gap injection then
  // scrambles their arrival order.
  p.base.airdrop_fraction = 0.25;
  p.base.airdrop_burst = 6;
  p.gap_chance = 0.15;
  p.gap_delay_ticks = 4;
  return p;
}

TrafficProfile traffic_fee_frenzy() {
  TrafficProfile p;
  p.name = "fee-frenzy";
  p.base.jitter_block_size = false;
  p.replace_chance = 0.5;
  p.underpriced_replace_chance = 0.3;
  p.spike_chance = 0.1;
  p.spike_ticks = 4;
  p.spike_multiplier = 8;
  return p;
}

TrafficGenerator::TrafficGenerator(TrafficProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), rng_([&] {
        std::uint64_t sm = seed ^ 0x7aff'1c00'f12e'05eULL;
        return splitmix64(sm);
      }()) {
  BP_ASSERT(profile_.sources >= 1);
  sources_.reserve(profile_.sources);
  for (std::size_t i = 0; i < profile_.sources; ++i) {
    WorkloadConfig c = profile_.base;
    std::uint64_t sm = seed + 0x9e37'79b9'7f4a'7c15ULL * (i + 1);
    c.seed = splitmix64(sm);
    c.sender_partition_index = i;
    c.sender_partition_count = profile_.sources;
    sources_.push_back(Source{WorkloadGenerator(c), {}});
  }
}

state::WorldState TrafficGenerator::genesis() const {
  return sources_.front().gen.genesis();
}

std::size_t TrafficGenerator::num_senders() const noexcept {
  return profile_.base.num_eoa;
}

Address TrafficGenerator::sender(std::size_t i) const {
  return sources_.front().gen.eoa(i);
}

void TrafficGenerator::emit(std::vector<chain::Transaction>& out,
                            chain::Transaction tx) {
  // Remember a copy for the replacement path before handing it out.
  if (recent_.size() < kRecentRing) {
    recent_.push_back(tx);
  } else {
    recent_[recent_next_] = tx;
    recent_next_ = (recent_next_ + 1) % kRecentRing;
  }
  out.push_back(std::move(tx));
  ++stats_.emitted;
}

std::vector<chain::Transaction> TrafficGenerator::tick() {
  std::vector<chain::Transaction> out;

  // Fee-spike state machine: one stretch at a time.
  if (spike_left_ == 0 && profile_.spike_chance > 0.0 &&
      rng_.chance(profile_.spike_chance)) {
    spike_left_ = profile_.spike_ticks;
  }
  const bool spiking = spike_left_ > 0;
  if (spiking) {
    --spike_left_;
    ++stats_.spike_ticks;
  }

  for (Source& src : sources_) {
    // Release held-back transactions whose delay expired (the "gap" closes).
    while (!src.held.empty() && src.held.front().release_tick <= now_) {
      ++stats_.gaps_released;
      --delayed_count_;
      emit(out, std::move(src.held.front().tx));
      src.held.pop_front();
    }

    std::size_t budget = profile_.txs_per_tick;
    if (profile_.burst_chance > 0.0 && rng_.chance(profile_.burst_chance)) {
      budget *= profile_.burst_multiplier;
      ++stats_.bursts;
    }
    std::vector<chain::Transaction> batch = src.gen.next_batch(budget);
    for (chain::Transaction& tx : batch) {
      if (spiking) tx.gas_price = tx.gas_price * U256{profile_.spike_multiplier};
      if (profile_.gap_chance > 0.0 && rng_.chance(profile_.gap_chance)) {
        // Hold this one back; same-sender successors emitted this tick will
        // arrive first — an out-of-order nonce gap at the pool.
        ++stats_.gaps_injected;
        ++delayed_count_;
        src.held.push_back(Delayed{
            std::move(tx), now_ + rng_.range(1, profile_.gap_delay_ticks)});
        continue;
      }
      emit(out, std::move(tx));
    }

    // Re-bid a recently emitted slot (replace-by-fee traffic).
    if (profile_.replace_chance > 0.0 && !recent_.empty() &&
        rng_.chance(profile_.replace_chance)) {
      chain::Transaction re = recent_[rng_.below(recent_.size())];
      const U256 old_price = re.gas_price;
      if (rng_.chance(profile_.underpriced_replace_chance)) {
        // Same price, different payload: below any positive bump threshold.
        re.value += U256{1};
        ++stats_.underpriced_replacements;
      } else {
        re.gas_price =
            old_price * U256{100 + profile_.replace_bump_percent} / U256{100} +
            U256{1};
        ++stats_.replacements;
      }
      emit(out, std::move(re));
    }
  }

  // Interleave the sources deterministically (Fisher-Yates under rng_).
  if (profile_.shuffle_arrivals && out.size() > 1) {
    for (std::size_t i = out.size() - 1; i > 0; --i)
      std::swap(out[i], out[rng_.below(i + 1)]);
  }

  ++now_;
  ++stats_.ticks;
  return out;
}

}  // namespace blockpilot::workload
