// Synthetic mainnet-like workload generation (DESIGN.md §1, substitution 2).
//
// Emits a genesis world state (funded EOAs, deployed token/DEX/counter
// contracts, pre-seeded token balances and pool reserves) and a stream of
// blocks whose conflict structure is calibrated to the paper's measured
// statistics: 132 transactions per block on average, Zipf-popular hotspot
// contracts, and a largest-conflict-subgraph averaging ~27.5 % of a block.
//
// All randomness flows from one seed; identical configs produce identical
// transaction streams on any host.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/transaction.hpp"
#include "state/world_state.hpp"
#include "support/rng.hpp"

namespace blockpilot::workload {

struct WorkloadConfig {
  std::uint64_t seed = 0x5eed;

  std::size_t num_eoa = 2000;   // externally-owned (sender) accounts
  std::size_t num_tokens = 12;  // token contracts
  std::size_t num_dex = 6;      // DEX (hotspot) contracts

  std::size_t txs_per_block = 132;  // paper: average mainnet block
  /// When true, block sizes vary +-40 % around txs_per_block (mainnet
  /// blocks are far from constant-size).
  bool jitter_block_size = true;

  // Transaction-kind mix (fractions sum to <= 1; remainder = native).
  // The defaults are calibrated (see DESIGN.md §1) so that account-level
  // dependency graphs reproduce the paper's measured conflict structure:
  // largest subgraph ~27.5 % of a block on average (§5.5) and validator
  // scalability that knees around 6 threads (§5.4).
  double token_fraction = 0.42;
  double dex_fraction = 0.33;  // primary hotspot knob (see presets below)
  /// NFT-drop traffic: sequential mints on a shared counter (§5.5's "NFT"
  /// pattern).  Off by default; preset_nft_drop() exercises it.
  double nft_fraction = 0.0;
  /// Airdrop traffic: bursts of consecutive-nonce transfers from a single
  /// distributor account ("token distributions", §5.5) — same-sender nonce
  /// chains that stress the proposer's kNotReady deferral path.
  double airdrop_fraction = 0.0;
  std::size_t airdrop_burst = 8;  // transfers per airdrop burst

  /// Zipf skew of contract popularity: higher -> traffic concentrates on
  /// the hottest token/DEX, growing the largest subgraph.
  double contract_zipf_s = 1.5;
  /// Zipf skew of token-transfer recipients (popular payees create sparse
  /// storage conflicts inside token traffic).
  double recipient_zipf_s = 1.0;

  std::uint64_t default_gas_price_min = 10;  // priced in wei-like units
  std::uint64_t default_gas_price_max = 200;

  /// Sender partitioning: generator i of N draws senders only from its own
  /// slice of the EOA range, so N independent generators (the traffic
  /// harness's submission sources) never collide on a (sender, nonce) slot.
  /// Recipients still span the full range — cross-partition conflicts stay.
  std::size_t sender_partition_index = 0;
  std::size_t sender_partition_count = 1;
};

/// Presets sweeping the hotspot regime for Fig. 8: from nearly
/// conflict-free to single-subgraph blocks.
WorkloadConfig preset_mainnet();      // calibrated to ~27.5 % largest subgraph
WorkloadConfig preset_low_conflict();
WorkloadConfig preset_high_conflict();
/// NFT-drop day: heavy mint traffic on few collections plus airdrops.
WorkloadConfig preset_nft_drop();

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  /// Funded and deployed genesis state (idempotent; independent of the
  /// transaction stream position).
  state::WorldState genesis() const;

  /// Next block's transaction batch.  Per-sender nonces are tracked across
  /// calls, so consecutive batches chain correctly.
  std::vector<chain::Transaction> next_block();

  /// A batch of exactly `n` transactions (benchmark parameter sweeps).
  std::vector<chain::Transaction> next_batch(std::size_t n);

  const WorkloadConfig& config() const noexcept { return config_; }

  // Deterministic address layout.
  Address eoa(std::size_t i) const;
  Address token(std::size_t i) const;
  Address dex(std::size_t i) const;
  Address counter_addr() const;
  Address nft(std::size_t i) const;

  static constexpr std::size_t kNftCollections = 3;

 private:
  chain::Transaction make_native(Xoshiro256& rng);
  chain::Transaction make_token(Xoshiro256& rng);
  chain::Transaction make_dex(Xoshiro256& rng);
  chain::Transaction make_nft(Xoshiro256& rng);
  void append_airdrop(std::vector<chain::Transaction>& out, Xoshiro256& rng,
                      std::size_t max_txs);
  chain::Transaction base_tx(Xoshiro256& rng, const Address& from);
  Address pick_sender(Xoshiro256& rng) const;

  WorkloadConfig config_;
  Xoshiro256 rng_;
  ZipfSampler contract_zipf_;
  ZipfSampler recipient_zipf_;
  std::unordered_map<Address, std::uint64_t> next_nonce_;
};

}  // namespace blockpilot::workload
