#include "workload/generator.hpp"

#include "support/assert.hpp"
#include "workload/contracts.hpp"

namespace blockpilot::workload {
namespace {

// Address-space layout: ids chosen so EOAs, tokens and DEXes never collide.
constexpr std::uint64_t kEoaBase = 0x1000'0000ULL;
constexpr std::uint64_t kTokenBase = 0x2000'0000ULL;
constexpr std::uint64_t kDexBase = 0x3000'0000ULL;
constexpr std::uint64_t kCounterId = 0x4000'0000ULL;
constexpr std::uint64_t kNftBase = 0x5000'0000ULL;

// 1e21 base units: enough for any fee/value stream this generator emits.
const U256 kInitialBalance = U256{1'000'000'000ULL} * U256{1'000'000'000'000ULL};
// Pre-seeded token balance per holder.
const U256 kInitialTokenBalance = U256{1'000'000'000'000ULL};
// DEX pool reserves (large vs swap sizes so pools never drain in practice).
const U256 kInitialReserve = U256{1'000'000'000ULL} * U256{1'000'000'000ULL};

}  // namespace

WorkloadConfig preset_mainnet() { return WorkloadConfig{}; }

WorkloadConfig preset_low_conflict() {
  WorkloadConfig c;
  c.token_fraction = 0.30;
  c.dex_fraction = 0.0;
  c.recipient_zipf_s = 0.0;  // uniform recipients: conflicts are rare
  c.contract_zipf_s = 0.0;
  return c;
}

WorkloadConfig preset_high_conflict() {
  WorkloadConfig c;
  c.token_fraction = 0.10;
  c.dex_fraction = 0.80;
  c.num_dex = 1;  // one pool: every swap chains on the reserve slots
  c.contract_zipf_s = 0.0;
  return c;
}

WorkloadConfig preset_nft_drop() {
  WorkloadConfig c;
  c.token_fraction = 0.15;
  c.dex_fraction = 0.05;
  c.nft_fraction = 0.50;
  c.airdrop_fraction = 0.15;
  return c;
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config),
      rng_(config.seed),
      contract_zipf_(std::max<std::size_t>(
                         1, std::max(config.num_tokens, config.num_dex)),
                     config.contract_zipf_s),
      recipient_zipf_(std::max<std::size_t>(1, config.num_eoa),
                      config.recipient_zipf_s) {
  BP_ASSERT(config_.num_eoa >= 2);
  BP_ASSERT(config_.token_fraction + config_.dex_fraction +
                config_.nft_fraction + config_.airdrop_fraction <=
            1.0 + 1e-9);
  BP_ASSERT(config_.airdrop_burst >= 1);
  BP_ASSERT(config_.sender_partition_count >= 1);
  BP_ASSERT(config_.sender_partition_index < config_.sender_partition_count);
}

Address WorkloadGenerator::pick_sender(Xoshiro256& rng) const {
  const std::size_t span = config_.num_eoa / config_.sender_partition_count;
  if (span == 0) return eoa(rng.below(config_.num_eoa));  // degenerate: share
  const std::size_t base = config_.sender_partition_index * span;
  return eoa(base + rng.below(span));
}

Address WorkloadGenerator::eoa(std::size_t i) const {
  BP_ASSERT(i < config_.num_eoa);
  return Address::from_id(kEoaBase + i);
}
Address WorkloadGenerator::token(std::size_t i) const {
  BP_ASSERT(i < config_.num_tokens);
  return Address::from_id(kTokenBase + i);
}
Address WorkloadGenerator::dex(std::size_t i) const {
  BP_ASSERT(i < config_.num_dex);
  return Address::from_id(kDexBase + i);
}
Address WorkloadGenerator::counter_addr() const {
  return Address::from_id(kCounterId);
}
Address WorkloadGenerator::nft(std::size_t i) const {
  BP_ASSERT(i < kNftCollections);
  return Address::from_id(kNftBase + i);
}

state::WorldState WorkloadGenerator::genesis() const {
  state::WorldState ws;
  using state::StateKey;

  for (std::size_t i = 0; i < config_.num_eoa; ++i)
    ws.set(StateKey::balance(eoa(i)), kInitialBalance);

  const Bytes token_code = token_contract();
  for (std::size_t t = 0; t < config_.num_tokens; ++t) {
    const Address addr = token(t);
    ws.set_code(addr, token_code);
    // Every EOA holds tokens so transfers rarely revert.
    for (std::size_t i = 0; i < config_.num_eoa; ++i)
      ws.set(StateKey::storage(addr, eoa(i).to_u256()), kInitialTokenBalance);
  }

  const Bytes dex_code = dex_contract();
  for (std::size_t d = 0; d < config_.num_dex; ++d) {
    const Address addr = dex(d);
    ws.set_code(addr, dex_code);
    ws.set(StateKey::storage(addr, U256{0}), kInitialReserve);
    ws.set(StateKey::storage(addr, U256{1}), kInitialReserve);
  }

  ws.set_code(counter_addr(), counter_contract());

  const Bytes nft_code = nft_contract();
  for (std::size_t n = 0; n < kNftCollections; ++n)
    ws.set_code(nft(n), nft_code);
  return ws;
}

chain::Transaction WorkloadGenerator::base_tx(Xoshiro256& rng,
                                              const Address& from) {
  chain::Transaction tx;
  tx.from = from;
  tx.nonce = next_nonce_[from]++;
  tx.gas_price = U256{rng.range(config_.default_gas_price_min,
                                config_.default_gas_price_max)};
  return tx;
}

chain::Transaction WorkloadGenerator::make_native(Xoshiro256& rng) {
  const Address from = pick_sender(rng);
  chain::Transaction tx = base_tx(rng, from);
  // Zipf-popular recipients: two transfers to one payee conflict on its
  // balance counter — the paper's canonical "counter" conflict.
  tx.to = eoa(recipient_zipf_(rng));
  tx.value = U256{rng.range(1, 1'000'000)};
  tx.gas_limit = 25'000;
  return tx;
}

chain::Transaction WorkloadGenerator::make_token(Xoshiro256& rng) {
  const Address from = pick_sender(rng);
  chain::Transaction tx = base_tx(rng, from);
  const std::size_t which =
      config_.num_tokens == 0 ? 0 : contract_zipf_(rng) % config_.num_tokens;
  tx.to = token(which);
  const Address recipient = eoa(recipient_zipf_(rng));
  tx.data = token_transfer_calldata(recipient, U256{rng.range(1, 10'000)});
  tx.gas_limit = 120'000;
  return tx;
}

chain::Transaction WorkloadGenerator::make_dex(Xoshiro256& rng) {
  const Address from = pick_sender(rng);
  chain::Transaction tx = base_tx(rng, from);
  const std::size_t which =
      config_.num_dex == 0 ? 0 : contract_zipf_(rng) % config_.num_dex;
  tx.to = dex(which);
  tx.data = dex_swap_calldata(U256{rng.range(1'000, 1'000'000)});
  tx.gas_limit = 160'000;
  return tx;
}

std::vector<chain::Transaction> WorkloadGenerator::next_block() {
  std::size_t n = config_.txs_per_block;
  if (config_.jitter_block_size && n >= 5) {
    const std::size_t lo = n - (n * 2) / 5;
    const std::size_t hi = n + (n * 2) / 5;
    n = rng_.range(lo, hi);
  }
  return next_batch(n);
}

chain::Transaction WorkloadGenerator::make_nft(Xoshiro256& rng) {
  const Address from = pick_sender(rng);
  chain::Transaction tx = base_tx(rng, from);
  tx.to = nft(rng.below(kNftCollections));
  tx.gas_limit = 120'000;
  return tx;  // no calldata: the contract mints to CALLER
}

void WorkloadGenerator::append_airdrop(std::vector<chain::Transaction>& out,
                                       Xoshiro256& rng,
                                       std::size_t max_txs) {
  // One distributor sends a run of consecutive-nonce transfers: the nonce
  // chain forces serial commit order within the burst.
  const Address distributor = pick_sender(rng);
  const std::size_t burst = std::min(config_.airdrop_burst, max_txs);
  for (std::size_t i = 0; i < burst; ++i) {
    chain::Transaction tx = base_tx(rng, distributor);
    tx.to = eoa(rng.below(config_.num_eoa));
    tx.value = U256{rng.range(1, 1000)};
    tx.gas_limit = 25'000;
    out.push_back(std::move(tx));
  }
}

std::vector<chain::Transaction> WorkloadGenerator::next_batch(std::size_t n) {
  std::vector<chain::Transaction> txs;
  txs.reserve(n);
  while (txs.size() < n) {
    const double roll = rng_.uniform01();
    double threshold = config_.dex_fraction;
    if (roll < threshold && config_.num_dex > 0) {
      txs.push_back(make_dex(rng_));
      continue;
    }
    threshold += config_.token_fraction;
    if (roll < threshold && config_.num_tokens > 0) {
      txs.push_back(make_token(rng_));
      continue;
    }
    threshold += config_.nft_fraction;
    if (roll < threshold) {
      txs.push_back(make_nft(rng_));
      continue;
    }
    threshold += config_.airdrop_fraction;
    if (roll < threshold) {
      // A burst counts as one draw but emits several transactions.
      append_airdrop(txs, rng_, n - txs.size());
      continue;
    }
    txs.push_back(make_native(rng_));
  }
  return txs;
}

}  // namespace blockpilot::workload
