// NodeCache: a bounded, hash-consed cache of MPT node encodings.
//
// State commitment spends most of its time keccak-hashing node encodings.
// Distinct tries frequently contain bit-identical nodes — sibling blocks at
// one height share almost the whole account trie, a from-scratch rebuild
// re-creates every node of the incremental trie, and hot contracts repeat
// storage-subtree shapes.  The cache interns `encoding -> keccak(encoding)`
// so the second computation of any node hash is a map lookup instead of a
// keccak permutation, and keeps the reverse `hash -> encoding` index so
// tooling (proof debugging, the commit bench) can resolve a node by its
// hash.
//
// Capacity is accounted in *bytes* (encoding length plus a fixed per-entry
// overhead), not entry counts, so a cache full of fat branch nodes and one
// full of slim leaves bound the same memory.  Eviction is CLOCK
// (second-chance): a hit sets the entry's reference bit; the sweep hand
// clears set bits and evicts the first clear entry it meets, so the policy
// degenerates to FIFO exactly when nothing is re-used.  Admission is
// TinyLFU-style: each shard keeps a count-min frequency sketch over node
// fingerprints, and a miss on a full shard is cached only when the
// candidate's estimated frequency is at least the CLOCK victim's — one-shot
// encodings from big-state scans stop cycling hot shards, while an equal
// -frequency candidate still wins so a pure-FIFO workload behaves exactly
// as before.  Sharded to keep the commit pool's concurrent root
// computations from serializing on one mutex.  Hit/miss/eviction/rejection
// /byte counters are exposed for benches and tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "types/address.hpp"

namespace blockpilot::trie {

class NodeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected = 0;  // misses denied admission by the sketch
    std::uint64_t bypassed = 0;  // hash_of calls that skipped the cache
                                 // entirely (capacity 0, or jumbo encoding)
    std::uint64_t load_hits = 0;    // disk-backed stub loads served here
    std::uint64_t load_misses = 0;  // stub loads that had to hit the store
    std::size_t entries = 0;
    std::size_t bytes = 0;     // resident, per entry_bytes()
    std::size_t capacity = 0;  // byte budget across all shards
  };

  /// Default byte budget (~the old 2^16-entry bound at typical node sizes).
  static constexpr std::size_t kDefaultCapacity = std::size_t{16} << 20;

  /// Fixed accounting overhead charged per entry on top of the encoding
  /// length: digest (32B) plus map/ring bookkeeping.
  static constexpr std::size_t kEntryOverhead = 96;

  /// Bytes one cached entry of the given encoding length is charged.
  static constexpr std::size_t entry_bytes(std::size_t encoding_size) noexcept {
    return encoding_size + kEntryOverhead;
  }

  explicit NodeCache(std::size_t capacity_bytes = kDefaultCapacity);

  /// Hash-consed keccak of a node encoding: returns the memoized digest when
  /// an identical encoding was hashed before, computing and interning it
  /// otherwise.  A capacity of 0 disables interning (plain keccak); an
  /// encoding whose entry_bytes() alone exceeds a shard's budget is hashed
  /// but never cached.
  Hash256 hash_of(std::span<const std::uint8_t> encoding);

  /// Reverse lookup: the RLP encoding of a cached node by its hash.  A hit
  /// counts as a reference for CLOCK (the read-through path keeps hot disk
  /// nodes resident).
  std::optional<std::vector<std::uint8_t>> encoding_of(const Hash256& h);

  /// Read-through accounting for the trie's disk-backed stub loads (the
  /// load itself lives in mpt.cpp; the cache only owns the counters so one
  /// stats() struct tells the whole hit/miss story).
  void count_load_hit() noexcept {
    load_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_load_miss() noexcept {
    load_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Aggregate statistics over all shards.
  Stats stats() const;

  /// Drops every entry (counters survive; see reset_stats).
  void clear();
  void reset_stats();

  /// Rebounds the byte budget; shrinking evicts by CLOCK sweep.  Capacity 0
  /// bypasses the cache entirely.
  void set_capacity(std::size_t capacity_bytes);
  std::size_t capacity() const;

  /// The process-wide cache the trie layer's node hashing goes through.
  static NodeCache& global();

 private:
  using Bytes = std::vector<std::uint8_t>;

  struct BytesHash {
    std::size_t operator()(const Bytes& b) const noexcept {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (const std::uint8_t byte : b) {
        h ^= byte;
        h *= 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };

  struct Entry {
    Hash256 hash;
    bool referenced = false;  // CLOCK second-chance bit, set on hit
    std::uint64_t fp = 0;     // sketch fingerprint (full-encoding FNV-1a)
  };
  // Map nodes are pointer-stable across rehash, so the ring and the reverse
  // index address entries by node pointer.
  using MapNode = std::pair<const Bytes, Entry>;

  /// TinyLFU-style count-min frequency sketch: 4 saturating 4-bit-equivalent
  /// counters per fingerprint, halved wholesale every kSamplePeriod records
  /// so stale popularity decays instead of pinning the shard forever.
  struct FreqSketch {
    static constexpr std::size_t kCounters = 4096;  // power of two
    static constexpr std::uint8_t kMaxCount = 15;
    static constexpr std::uint64_t kSamplePeriod = 16 * kCounters;

    void record(std::uint64_t fp) noexcept;
    std::uint32_t estimate(std::uint64_t fp) const noexcept;
    void reset() noexcept;

    std::array<std::uint8_t, kCounters> counters{};
    std::uint64_t samples = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Bytes, Entry, BytesHash> by_encoding;
    std::unordered_map<Hash256, MapNode*> by_hash;
    std::list<MapNode*> ring;          // CLOCK order; new entries join
    std::list<MapNode*>::iterator hand;  // behind the hand
    FreqSketch sketch;                 // admission filter
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected = 0;

    Shard() : hand(ring.end()) {}
  };

  static constexpr std::size_t kShards = 8;

  Shard& shard_for(std::span<const std::uint8_t> encoding);
  /// Advances the hand to the entry the next eviction would take (clearing
  /// reference bits on the way) without evicting it.  Precondition: the
  /// ring is non-empty.
  static MapNode* clock_victim(Shard& s);
  static void evict_one(Shard& s);

  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> shard_capacity_;  // byte budget per shard
  std::atomic<std::uint64_t> bypassed_{0};
  std::atomic<std::uint64_t> load_hits_{0};
  std::atomic<std::uint64_t> load_misses_{0};
};

}  // namespace blockpilot::trie
