// NodeCache: a bounded, hash-consed cache of MPT node encodings.
//
// State commitment spends most of its time keccak-hashing node encodings.
// Distinct tries frequently contain bit-identical nodes — sibling blocks at
// one height share almost the whole account trie, a from-scratch rebuild
// re-creates every node of the incremental trie, and hot contracts repeat
// storage-subtree shapes.  The cache interns `encoding -> keccak(encoding)`
// so the second computation of any node hash is a map lookup instead of a
// keccak permutation, and keeps the reverse `hash -> encoding` index so
// tooling (proof debugging, the commit bench) can resolve a node by its
// hash.
//
// Bounded FIFO eviction; sharded to keep the commit pool's concurrent root
// computations from serializing on one mutex.  Hit/miss/eviction counters
// are exposed for benches and tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "types/address.hpp"

namespace blockpilot::trie {

class NodeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit NodeCache(std::size_t capacity = kDefaultCapacity);

  /// Hash-consed keccak of a node encoding: returns the memoized digest when
  /// an identical encoding was hashed before, computing and interning it
  /// otherwise.  A capacity of 0 disables interning (plain keccak).
  Hash256 hash_of(std::span<const std::uint8_t> encoding);

  /// Reverse lookup: the RLP encoding of a cached node by its hash.
  std::optional<std::vector<std::uint8_t>> encoding_of(const Hash256& h) const;

  /// Aggregate statistics over all shards.
  Stats stats() const;

  /// Drops every entry (counters survive; see reset_stats).
  void clear();
  void reset_stats();

  /// Rebounds the cache; shrinking evicts FIFO order.  Capacity 0 bypasses
  /// the cache entirely.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// The process-wide cache the trie layer's node hashing goes through.
  static NodeCache& global();

 private:
  using Bytes = std::vector<std::uint8_t>;

  struct BytesHash {
    std::size_t operator()(const Bytes& b) const noexcept {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (const std::uint8_t byte : b) {
        h ^= byte;
        h *= 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Bytes, Hash256, BytesHash> by_encoding;
    // Values point at the stable keys of `by_encoding` (node-based map).
    std::unordered_map<Hash256, const Bytes*> by_hash;
    std::deque<Hash256> fifo;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  static constexpr std::size_t kShards = 8;

  Shard& shard_for(std::span<const std::uint8_t> encoding);
  static void evict_one(Shard& s);

  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> shard_capacity_;
};

}  // namespace blockpilot::trie
