// Merkle proofs over the MPT.
//
// A proof for key K is the list of RLP-encoded nodes on the path from the
// root to K's leaf (or to the divergence point, for absence proofs).  A
// verifier holding only the trie root can check membership/absence without
// the full state — this is how light clients consume the world-state
// commitments that BlockPilot's validators produce.
#pragma once

#include <optional>
#include <vector>

#include "trie/mpt.hpp"

namespace blockpilot::trie {

struct Proof {
  /// RLP encodings of the nodes along the lookup path, root first.
  std::vector<Bytes> nodes;
};

/// Result of verifying a proof against a root.
struct ProofVerdict {
  bool ok = false;                 // proof is well-formed and hash-linked
  std::optional<Bytes> value;      // present iff the key exists
};

/// Produces a membership/absence proof for `key`.  The proof is valid
/// whether or not the key exists (absence is provable too).
Proof prove(const MerklePatriciaTrie& trie, std::span<const std::uint8_t> key);

/// Verifies `proof` against `root` for `key`.
/// ok == false means the proof is malformed or does not link to the root;
/// ok == true with nullopt value is a valid ABSENCE proof.
ProofVerdict verify_proof(const Hash256& root,
                          std::span<const std::uint8_t> key,
                          const Proof& proof);

}  // namespace blockpilot::trie
