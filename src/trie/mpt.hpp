// Merkle Patricia Trie (MPT) — Ethereum's authenticated key-value structure.
//
// The world-state root, every account's storage root, and the block-header
// state commitment that validators compare against a proposed block (paper
// §5.2: "Two world states are considered identical only if their MPT roots
// are the same") are all MPT root hashes, so correctness of this module is
// the foundation of the whole reproduction.
//
// Node model (yellow paper, appendix D):
//   * leaf      — hex-prefix-encoded key remainder + value;
//   * extension — hex-prefix-encoded shared nibble run + one child;
//   * branch    — 16 children indexed by next nibble + optional value.
// A node reference is its RLP encoding when shorter than 32 bytes, else the
// Keccak-256 of that encoding.  The root is always hashed.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "types/address.hpp"

namespace blockpilot::db {
class NodeStore;
}  // namespace blockpilot::db

namespace blockpilot::trie {

namespace detail {
struct MptNode;
}  // namespace detail

using Bytes = std::vector<std::uint8_t>;
using Nibbles = std::vector<std::uint8_t>;  // values 0..15

/// Splits a byte string into nibbles, high nibble first.
Nibbles to_nibbles(std::span<const std::uint8_t> key);

/// Hex-prefix (compact) encoding of a nibble path (yellow paper eq. 197).
Bytes hex_prefix_encode(std::span<const std::uint8_t> nibbles, bool is_leaf);

/// Inverse of hex_prefix_encode: recovers (nibbles, is_leaf).
std::pair<Nibbles, bool> hex_prefix_decode(std::span<const std::uint8_t> hp);

/// In-memory *persistent* Merkle Patricia Trie over byte-string keys and
/// values.
///
/// Copies share structure: copying a trie is O(1) and mutations path-copy,
/// cloning only the spine from the root to the touched key while every
/// untouched subtree stays shared between the copies.  Shared nodes also
/// keep their memoized hash references, which is what makes `root_hash()`
/// incremental — after k updates only O(k * depth) nodes re-hash.
///
/// Thread-safety: concurrent reads (get / root_hash / prove) are safe, even
/// across tries sharing structure (node hash memos are internally
/// synchronized).  Writes (put / erase) must not race with any other access
/// to the *same* trie object; writes to distinct tries sharing structure
/// are safe (mutation never touches shared nodes).
class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie();
  ~MerklePatriciaTrie();
  MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie(const MerklePatriciaTrie&);
  MerklePatriciaTrie& operator=(const MerklePatriciaTrie&);

  /// Inserts or overwrites. Empty values are equivalent to erasure (the trie
  /// never stores empty values, matching Ethereum semantics).
  void put(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> value);

  /// Returns the stored value or nullopt.
  std::optional<Bytes> get(std::span<const std::uint8_t> key) const;

  /// Removes a key; no-op when absent.
  void erase(std::span<const std::uint8_t> key);

  bool empty() const noexcept { return root_ == nullptr; }

  /// Number of key-value pairs.
  std::size_t size() const noexcept { return size_; }

  /// Keccak-256 commitment over the whole trie.  The canonical empty-trie
  /// root (keccak of the RLP empty string) is returned for an empty trie.
  Hash256 root_hash() const;

  /// The canonical empty-trie root constant.
  static Hash256 empty_root();

  /// Reopens a previously persisted trie by its root hash: the root node is
  /// loaded eagerly from `store` (aborting if absent), everything below it
  /// materializes lazily through disk-backed stubs as traversals touch it.
  /// `store` must outlive the returned trie and every trie derived from it.
  /// size() is not recoverable from a root hash and reports 0.
  static MerklePatriciaTrie from_root(const Hash256& root,
                                      const db::NodeStore& store);

  /// Writes every *new* node reachable from the root into `store`
  /// (content-addressed: walks prune at nodes the store already holds, and
  /// at unloaded stubs, which by construction came from a persisted root).
  /// Returns the number of nodes appended.  After it returns, from_root
  /// (root_hash(), store) reconstructs this exact trie.
  std::size_t persist_nodes(db::NodeStore& store) const;

  /// Internal: root node pointer for the proof generator (proof.hpp).
  /// nullptr for an empty trie.  Not stable API.
  const detail::MptNode* root_node() const noexcept { return root_.get(); }

 private:
  std::shared_ptr<detail::MptNode> root_;
  std::size_t size_ = 0;
};

/// "Secure" trie wrapper: keys are keccak-hashed before insertion, matching
/// Ethereum's account and storage tries (prevents path-length attacks and
/// balances the tree).
class SecureTrie {
 public:
  void put(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> value) {
    const auto hashed = crypto::keccak256(key);
    inner_.put(std::span(hashed), value);
  }

  std::optional<Bytes> get(std::span<const std::uint8_t> key) const {
    const auto hashed = crypto::keccak256(key);
    return inner_.get(std::span(hashed));
  }

  void erase(std::span<const std::uint8_t> key) {
    const auto hashed = crypto::keccak256(key);
    inner_.erase(std::span(hashed));
  }

  Hash256 root_hash() const { return inner_.root_hash(); }
  std::size_t size() const noexcept { return inner_.size(); }
  bool empty() const noexcept { return inner_.empty(); }

  /// See MerklePatriciaTrie::from_root / persist_nodes.
  static SecureTrie from_root(const Hash256& root, const db::NodeStore& store) {
    SecureTrie t;
    t.inner_ = MerklePatriciaTrie::from_root(root, store);
    return t;
  }
  std::size_t persist_nodes(db::NodeStore& store) const {
    return inner_.persist_nodes(store);
  }
  const MerklePatriciaTrie& inner() const noexcept { return inner_; }

 private:
  MerklePatriciaTrie inner_;
};

}  // namespace blockpilot::trie
