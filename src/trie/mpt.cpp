#include "trie/mpt.hpp"

#include <cstring>

#include "db/node_store.hpp"
#include "rlp/rlp.hpp"
#include "support/assert.hpp"
#include "trie/mpt_node.hpp"
#include "trie/node_cache.hpp"

namespace blockpilot::trie {

Nibbles to_nibbles(std::span<const std::uint8_t> key) {
  Nibbles out;
  out.reserve(key.size() * 2);
  for (auto b : key) {
    out.push_back(static_cast<std::uint8_t>(b >> 4));
    out.push_back(static_cast<std::uint8_t>(b & 0xf));
  }
  return out;
}

Bytes hex_prefix_encode(std::span<const std::uint8_t> nibbles, bool is_leaf) {
  Bytes out;
  const std::uint8_t flag = is_leaf ? 2 : 0;
  if (nibbles.size() % 2 == 0) {
    out.push_back(static_cast<std::uint8_t>(flag << 4));
    for (std::size_t i = 0; i < nibbles.size(); i += 2)
      out.push_back(
          static_cast<std::uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
  } else {
    out.push_back(static_cast<std::uint8_t>(((flag | 1) << 4) | nibbles[0]));
    for (std::size_t i = 1; i < nibbles.size(); i += 2)
      out.push_back(
          static_cast<std::uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
  }
  return out;
}

std::pair<Nibbles, bool> hex_prefix_decode(std::span<const std::uint8_t> hp) {
  BP_ASSERT(!hp.empty());
  const std::uint8_t flag = hp[0] >> 4;
  const bool is_leaf = (flag & 2) != 0;
  const bool odd = (flag & 1) != 0;
  Nibbles out;
  if (odd) out.push_back(hp[0] & 0xf);
  for (std::size_t i = 1; i < hp.size(); ++i) {
    out.push_back(static_cast<std::uint8_t>(hp[i] >> 4));
    out.push_back(static_cast<std::uint8_t>(hp[i] & 0xf));
  }
  return {std::move(out), is_leaf};
}

using Node = detail::MptNode;
using NodePtr = std::shared_ptr<Node>;

MerklePatriciaTrie::MerklePatriciaTrie() = default;
MerklePatriciaTrie::~MerklePatriciaTrie() = default;
MerklePatriciaTrie::MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept = default;
MerklePatriciaTrie& MerklePatriciaTrie::operator=(MerklePatriciaTrie&&) noexcept =
    default;

// Persistent copy: shares the node graph; subsequent writes on either side
// path-copy, so the copies diverge without disturbing each other.
MerklePatriciaTrie::MerklePatriciaTrie(const MerklePatriciaTrie& other)
    : root_(other.root_), size_(other.size_) {}

MerklePatriciaTrie& MerklePatriciaTrie::operator=(
    const MerklePatriciaTrie& other) {
  if (this != &other) {
    root_ = other.root_;
    size_ = other.size_;
  }
  return *this;
}

namespace {

std::size_t common_prefix(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

// Returns a uniquely-owned, mutation-safe version of `node`: in place when
// this is the only reference (invalidating its hash memo), a shallow clone
// (children still shared) otherwise.  Callers must have moved the pointer
// out of its parent slot so use_count reflects true external sharing, and
// must take ownership top-down — owning a parent bumps its children's
// counts, so a shared ancestor can never leak an in-place child mutation.
NodePtr owned(NodePtr node) {
  if (node == nullptr) return node;
  if (node.use_count() == 1) {
    node->invalidate_ref();
    return node;
  }
  auto copy = std::make_shared<Node>();
  copy->kind = node->kind;
  copy->path = node->path;
  copy->value = node->value;
  copy->child = node->child;
  copy->children = node->children;
  return copy;
}

// Inserts (key-suffix, value) into the subtree rooted at `node`, returning
// the (possibly replaced) subtree root. `inserted` reports whether a new key
// was added (vs overwritten).
NodePtr insert(NodePtr node, std::span<const std::uint8_t> key, Bytes value,
               bool& inserted) {
  if (node == nullptr) {
    inserted = true;
    return Node::leaf(Nibbles(key.begin(), key.end()), std::move(value));
  }
  detail::resolved(node.get());
  node = owned(std::move(node));

  switch (node->kind) {
    case Node::Kind::kLeaf: {
      const std::size_t cp = common_prefix(node->path, key);
      if (cp == node->path.size() && cp == key.size()) {
        node->value = std::move(value);  // overwrite
        inserted = false;
        return node;
      }
      // Split into a branch under a possible shared-prefix extension.
      auto branch = Node::branch();
      // Existing leaf moves under the branch.
      if (node->path.size() == cp) {
        branch->value = std::move(node->value);
      } else {
        const std::uint8_t idx = node->path[cp];
        Nibbles rest(node->path.begin() + static_cast<std::ptrdiff_t>(cp) + 1,
                     node->path.end());
        branch->children[idx] =
            Node::leaf(std::move(rest), std::move(node->value));
      }
      // New key goes under the branch too.
      if (key.size() == cp) {
        branch->value = std::move(value);
      } else {
        const std::uint8_t idx = key[cp];
        Nibbles rest(key.begin() + static_cast<std::ptrdiff_t>(cp) + 1,
                     key.end());
        branch->children[idx] = Node::leaf(std::move(rest), std::move(value));
      }
      inserted = true;
      if (cp == 0) return branch;
      Nibbles shared(key.begin(), key.begin() + static_cast<std::ptrdiff_t>(cp));
      return Node::extension(std::move(shared), std::move(branch));
    }

    case Node::Kind::kExtension: {
      const std::size_t cp = common_prefix(node->path, key);
      if (cp == node->path.size()) {
        node->child =
            insert(std::move(node->child), key.subspan(cp), std::move(value),
                   inserted);
        return node;
      }
      // Split the extension at the divergence point.
      auto branch = Node::branch();
      {
        const std::uint8_t idx = node->path[cp];
        Nibbles rest(node->path.begin() + static_cast<std::ptrdiff_t>(cp) + 1,
                     node->path.end());
        if (rest.empty()) {
          branch->children[idx] = std::move(node->child);
        } else {
          branch->children[idx] =
              Node::extension(std::move(rest), std::move(node->child));
        }
      }
      if (key.size() == cp) {
        branch->value = std::move(value);
      } else {
        const std::uint8_t idx = key[cp];
        Nibbles rest(key.begin() + static_cast<std::ptrdiff_t>(cp) + 1,
                     key.end());
        branch->children[idx] = Node::leaf(std::move(rest), std::move(value));
      }
      inserted = true;
      if (cp == 0) return branch;
      Nibbles shared(key.begin(), key.begin() + static_cast<std::ptrdiff_t>(cp));
      return Node::extension(std::move(shared), std::move(branch));
    }

    case Node::Kind::kBranch: {
      if (key.empty()) {
        inserted = node->value.empty();
        node->value = std::move(value);
        return node;
      }
      const std::uint8_t idx = key[0];
      node->children[idx] = insert(std::move(node->children[idx]),
                                   key.subspan(1), std::move(value), inserted);
      return node;
    }
  }
  BP_ASSERT_MSG(false, "unreachable node kind");
}

const Bytes* lookup(const Node* node, std::span<const std::uint8_t> key) {
  while (node != nullptr) {
    detail::resolved(node);
    switch (node->kind) {
      case Node::Kind::kLeaf:
        if (key.size() == node->path.size() &&
            std::equal(key.begin(), key.end(), node->path.begin()))
          return &node->value;
        return nullptr;
      case Node::Kind::kExtension: {
        const std::size_t n = node->path.size();
        if (key.size() < n ||
            !std::equal(node->path.begin(), node->path.end(), key.begin()))
          return nullptr;
        key = key.subspan(n);
        node = node->child.get();
        break;
      }
      case Node::Kind::kBranch:
        if (key.empty()) return node->value.empty() ? nullptr : &node->value;
        node = node->children[key[0]].get();
        key = key.subspan(1);
        break;
    }
  }
  return nullptr;
}

// Collapses a branch that lost children down to the minimal canonical form.
// `node` must be uniquely owned (the remove path guarantees it).
NodePtr normalize_branch(NodePtr node) {
  int child_count = 0;
  int only_idx = -1;
  for (int i = 0; i < 16; ++i) {
    if (node->children[static_cast<std::size_t>(i)] != nullptr) {
      ++child_count;
      only_idx = i;
    }
  }
  const bool has_value = !node->value.empty();
  if (child_count == 0) {
    if (!has_value) return nullptr;
    return Node::leaf({}, std::move(node->value));
  }
  if (child_count == 1 && !has_value) {
    NodePtr child =
        std::move(node->children[static_cast<std::size_t>(only_idx)]);
    const auto idx = static_cast<std::uint8_t>(only_idx);
    detail::resolved(child.get());
    switch (child->kind) {
      case Node::Kind::kLeaf:
      case Node::Kind::kExtension: {
        child = owned(std::move(child));  // its path is about to change
        Nibbles merged;
        merged.reserve(1 + child->path.size());
        merged.push_back(idx);
        merged.insert(merged.end(), child->path.begin(), child->path.end());
        child->path = std::move(merged);
        return child;
      }
      case Node::Kind::kBranch:
        return Node::extension({idx}, std::move(child));
    }
  }
  return node;
}

NodePtr remove(NodePtr node, std::span<const std::uint8_t> key,
               bool& removed) {
  if (node == nullptr) return nullptr;
  detail::resolved(node.get());
  switch (node->kind) {
    case Node::Kind::kLeaf:
      if (key.size() == node->path.size() &&
          std::equal(key.begin(), key.end(), node->path.begin())) {
        removed = true;
        return nullptr;
      }
      return node;

    case Node::Kind::kExtension: {
      const std::size_t n = node->path.size();
      if (key.size() < n ||
          !std::equal(node->path.begin(), node->path.end(), key.begin()))
        return node;
      node = owned(std::move(node));
      node->child = remove(std::move(node->child), key.subspan(n), removed);
      if (!removed) return node;
      if (node->child == nullptr) return nullptr;
      // Merge with the (possibly collapsed) child to stay canonical.
      if (node->child->kind == Node::Kind::kBranch) return node;
      NodePtr child = owned(std::move(node->child));
      Nibbles merged = node->path;
      merged.insert(merged.end(), child->path.begin(), child->path.end());
      child->path = std::move(merged);
      return child;
    }

    case Node::Kind::kBranch: {
      if (key.empty()) {
        if (node->value.empty()) return node;
        node = owned(std::move(node));
        removed = true;
        node->value.clear();
        return normalize_branch(std::move(node));
      }
      const std::uint8_t idx = key[0];
      node = owned(std::move(node));
      node->children[idx] =
          remove(std::move(node->children[idx]), key.subspan(1), removed);
      if (!removed) return node;
      return normalize_branch(std::move(node));
    }
  }
  BP_ASSERT_MSG(false, "unreachable node kind");
}

}  // namespace

namespace detail {

const Bytes& node_ref(const MptNode* node) {
  // Fast path: published memo.
  if (node->ref_ready.load(std::memory_order_acquire))
    return node->cached_ref;
  // Serialize the first computation across tries sharing this node.  Lock
  // order is strictly parent-before-child along an acyclic node graph, so
  // nested acquisition in encode_node below cannot deadlock.
  while (node->ref_lock.test_and_set(std::memory_order_acquire)) {
  }
  if (!node->ref_ready.load(std::memory_order_relaxed)) {
    Bytes encoded = encode_node(node);
    if (encoded.size() < 32) {
      node->cached_ref = std::move(encoded);
    } else {
      const Hash256 digest = NodeCache::global().hash_of(std::span(encoded));
      node->cached_ref.assign(digest.bytes.begin(), digest.bytes.end());
    }
    node->ref_ready.store(true, std::memory_order_release);
  }
  node->ref_lock.clear(std::memory_order_release);
  return node->cached_ref;
}

// A reference to a child node: inline RLP when < 32 bytes, else the keccak
// hash as a 32-byte string.
void append_reference(rlp::Encoder& enc, const Node* node) {
  if (node == nullptr) {
    enc.add(std::span<const std::uint8_t>{});
    return;
  }
  const Bytes& ref = node_ref(node);
  if (ref.size() < 32) {
    enc.add_raw(std::span(ref));
  } else {
    enc.add(std::span<const std::uint8_t>(ref));
  }
}

namespace {

std::shared_ptr<MptNode> child_from_item(const rlp::Item& item,
                                         const db::NodeStore* store);

// Fills `node`'s structural fields from a decoded node encoding.  Child
// items are either nil (empty string), a 32-byte hash (becomes an unloaded
// stub on the same store), or a nested list (an inline node, rebuilt
// eagerly with its inline ref memoized so re-encoding is bit-identical).
void fill_from_item(MptNode& node, const rlp::Item& item,
                    const db::NodeStore* store) {
  BP_ASSERT_MSG(item.is_list, "node encoding must be an RLP list");
  if (item.list.size() == 17) {
    node.kind = MptNode::Kind::kBranch;
    for (std::size_t i = 0; i < 16; ++i)
      node.children[i] = child_from_item(item.list[i], store);
    node.value = item.list[16].str;
    return;
  }
  BP_ASSERT_MSG(item.list.size() == 2, "node list must have 2 or 17 items");
  auto [path, is_leaf] = hex_prefix_decode(std::span(item.list[0].str));
  if (is_leaf) {
    node.kind = MptNode::Kind::kLeaf;
    node.path = std::move(path);
    node.value = item.list[1].str;
    return;
  }
  node.kind = MptNode::Kind::kExtension;
  node.path = std::move(path);
  node.child = child_from_item(item.list[1], store);
  BP_ASSERT_MSG(node.child != nullptr, "extension child must be a node");
}

std::shared_ptr<MptNode> child_from_item(const rlp::Item& item,
                                         const db::NodeStore* store) {
  if (item.is_list) {
    auto n = std::make_shared<MptNode>();
    fill_from_item(*n, item, store);
    n->cached_ref = rlp::encode_item(item);
    BP_ASSERT(n->cached_ref.size() < 32);
    n->ref_ready.store(true, std::memory_order_release);
    return n;
  }
  if (item.str.empty()) return nullptr;
  BP_ASSERT_MSG(item.str.size() == 32,
                "child ref must be nil, inline, or a 32-byte hash");
  Hash256 h;
  std::memcpy(h.bytes.data(), item.str.data(), 32);
  return MptNode::stub(h, store);
}

}  // namespace

void load_stub(const MptNode* node) {
  while (node->ref_lock.test_and_set(std::memory_order_acquire)) {
  }
  if (!node->loaded.load(std::memory_order_relaxed)) {
    BP_ASSERT_MSG(node->store != nullptr, "stub without a backing store");
    BP_ASSERT(node->cached_ref.size() == 32);
    Hash256 h;
    std::memcpy(h.bytes.data(), node->cached_ref.data(), 32);
    // Read-through the global NodeCache: a hit skips the store entirely; a
    // miss fetches, then interns (hash_of) which also verifies integrity.
    auto& cache = NodeCache::global();
    Bytes enc;
    if (auto cached = cache.encoding_of(h); cached.has_value()) {
      cache.count_load_hit();
      enc = std::move(*cached);
    } else {
      cache.count_load_miss();
      std::vector<std::uint8_t> fetched;
      const db::Status st = node->store->get(h, fetched);
      BP_ASSERT_MSG(st.ok(), "node store lost a node the trie references");
      const Hash256 check = cache.hash_of(std::span(fetched));
      BP_ASSERT_MSG(check == h, "stored encoding does not hash to its ref");
      enc = std::move(fetched);
    }
    auto* mut = const_cast<MptNode*>(node);
    fill_from_item(*mut, rlp::decode(std::span(enc)), node->store);
    // A tiny (< 32 byte) encoding can only be a root loaded eagerly by
    // from_root (a child stub implies a hashed parent ref): rewrite the
    // memo to the canonical inline form before anyone else can see it.
    if (enc.size() < 32) mut->cached_ref = std::move(enc);
    mut->loaded.store(true, std::memory_order_release);
  }
  node->ref_lock.clear(std::memory_order_release);
}

Bytes encode_node(const Node* node) {
  rlp::Encoder enc;
  switch (node->kind) {
    case Node::Kind::kLeaf: {
      const Bytes hp = hex_prefix_encode(node->path, /*is_leaf=*/true);
      enc.begin_list().add(std::span(hp)).add(std::span(node->value)).end_list();
      break;
    }
    case Node::Kind::kExtension: {
      const Bytes hp = hex_prefix_encode(node->path, /*is_leaf=*/false);
      enc.begin_list().add(std::span(hp));
      append_reference(enc, node->child.get());
      enc.end_list();
      break;
    }
    case Node::Kind::kBranch: {
      enc.begin_list();
      for (const auto& child : node->children)
        append_reference(enc, child.get());
      enc.add(std::span(node->value));
      enc.end_list();
      break;
    }
  }
  return enc.take();
}

}  // namespace detail

void MerklePatriciaTrie::put(std::span<const std::uint8_t> key,
                             std::span<const std::uint8_t> value) {
  if (value.empty()) {
    erase(key);
    return;
  }
  const Nibbles nibbles = to_nibbles(key);
  bool inserted = false;
  root_ = insert(std::move(root_), std::span(nibbles),
                 Bytes(value.begin(), value.end()), inserted);
  if (inserted) ++size_;
}

std::optional<Bytes> MerklePatriciaTrie::get(
    std::span<const std::uint8_t> key) const {
  const Nibbles nibbles = to_nibbles(key);
  const Bytes* found = lookup(root_.get(), std::span(nibbles));
  if (found == nullptr) return std::nullopt;
  return *found;
}

void MerklePatriciaTrie::erase(std::span<const std::uint8_t> key) {
  const Nibbles nibbles = to_nibbles(key);
  bool removed = false;
  root_ = remove(std::move(root_), std::span(nibbles), removed);
  // from_root tries report size 0 (unknown), so guard the decrement.
  if (removed && size_ > 0) --size_;
}

Hash256 MerklePatriciaTrie::root_hash() const {
  if (root_ == nullptr) return empty_root();
  const Bytes& ref = detail::node_ref(root_.get());
  if (ref.size() == 32) {
    Hash256 h;
    std::memcpy(h.bytes.data(), ref.data(), 32);
    return h;
  }
  // Tiny root whose encoding inlines below 32 bytes: the root is always
  // hashed regardless (yellow paper), and the inline ref IS the encoding.
  return Hash256{crypto::keccak256(std::span(ref))};
}

MerklePatriciaTrie MerklePatriciaTrie::from_root(const Hash256& root,
                                                 const db::NodeStore& store) {
  MerklePatriciaTrie trie;
  if (root == empty_root()) return trie;
  auto stub = detail::MptNode::stub(root, &store);
  // Eager root load: validates the root exists and, for a tiny root,
  // rewrites the ref memo to the canonical inline form while the node is
  // still private to this call (no concurrent readers yet).
  detail::resolved(stub.get());
  trie.root_ = std::move(stub);
  return trie;
}

namespace {

// Persists the subtree rooted at a hash-referenced node.  Prunes at nodes
// the store already holds (content-addressing: an identical hash is an
// identical subtree) and never descends into inline children — their whole
// subtree is embedded in this node's encoding.
//
// POST-ORDER on purpose: children append strictly before their parent.
// Crash recovery truncates a *suffix* of the append-only file (everything
// past the last durability barrier), so with post-order appends a node's
// presence implies its whole closure's presence — which is exactly what
// makes the contains() prune sound even against a barrier that races an
// in-flight persist, and what lets persist_commitment() early-out on a
// root the store already holds.  (Compaction preserves the invariant
// differently: the rewritten file is adopted atomically via the manifest,
// never as a partially-trusted prefix.)
std::size_t persist_subtree(const Node* node, db::NodeStore& store) {
  const Bytes& ref = detail::node_ref(node);
  BP_ASSERT(ref.size() == 32);
  Hash256 h;
  std::memcpy(h.bytes.data(), ref.data(), 32);
  if (store.contains(h)) return 0;
  // New to this store.  An unloaded stub only reaches here when persisting
  // into a *different* store than it came from; materialize it first.
  detail::resolved(node);
  std::size_t appended = 0;
  const auto visit = [&](const Node* child) {
    if (child != nullptr && detail::node_ref(child).size() == 32)
      appended += persist_subtree(child, store);
  };
  if (node->kind == Node::Kind::kExtension) {
    visit(node->child.get());
  } else if (node->kind == Node::Kind::kBranch) {
    for (const auto& child : node->children) visit(child.get());
  }
  const Bytes enc = detail::encode_node(node);
  const db::Status st = store.put(h, std::span(enc));
  BP_ASSERT_MSG(st.ok(), "node store put failed");
  return appended + 1;
}

}  // namespace

std::size_t MerklePatriciaTrie::persist_nodes(db::NodeStore& store) const {
  if (root_ == nullptr) return 0;
  const Bytes& ref = detail::node_ref(root_.get());
  if (ref.size() == 32) return persist_subtree(root_.get(), store);
  // Tiny root: its inline ref IS the encoding; store it under its keccak so
  // from_root(root_hash()) can find it.
  const Hash256 h{crypto::keccak256(std::span(ref))};
  if (store.contains(h)) return 0;
  const db::Status st = store.put(h, std::span(ref));
  BP_ASSERT_MSG(st.ok(), "node store put failed");
  return 1;
}

Hash256 MerklePatriciaTrie::empty_root() {
  // keccak256(rlp("")) == keccak256(0x80).
  static const Hash256 kEmpty = [] {
    const std::uint8_t empty_rlp = 0x80;
    return Hash256{crypto::keccak256(std::span(&empty_rlp, 1))};
  }();
  return kEmpty;
}

}  // namespace blockpilot::trie
