// Internal MPT node representation and node encoding, shared between the
// trie implementation (mpt.cpp) and the proof generator (proof.cpp).
// Not part of the public API.
//
// Nodes are reference-counted and structurally shared between tries: copying
// a trie shares the whole node graph, and mutations path-copy (clone only
// the nodes on the root-to-leaf spine, cloning shallowly so subtrees stay
// shared).  This is what makes per-block world-state copies O(1) and state
// commitment incremental — see docs/commit_pipeline.md.
//
// Each node memoizes its *reference* (the inline RLP when shorter than 32
// bytes, else the keccak digest of the RLP).  The memo is filled lazily on
// first hash and survives until a mutation invalidates the node (mutations
// only ever touch uniquely-owned nodes, so shared subtrees keep their
// references).  Because tries that share structure may hash concurrently on
// the commit pool, the memo is guarded by a per-node spinlock.
#pragma once

#include <array>
#include <atomic>
#include <memory>

#include "crypto/keccak.hpp"
#include "rlp/rlp.hpp"
#include "support/assert.hpp"
#include "trie/mpt.hpp"

namespace blockpilot::db {
class NodeStore;
}  // namespace blockpilot::db

namespace blockpilot::trie::detail {

struct MptNode {
  enum class Kind { kLeaf, kExtension, kBranch };
  Kind kind;

  // Leaf / extension:
  Nibbles path;
  Bytes value;                     // leaf value, or branch value slot
  std::shared_ptr<MptNode> child;  // extension child

  // Branch:
  std::array<std::shared_ptr<MptNode>, 16> children;

  // Memoized node reference: inline RLP when < 32 bytes, else the 32-byte
  // keccak digest.  `ref_ready` is the publication flag; `ref_lock` is a
  // spinlock that serializes the (rare) concurrent first computation when
  // two tries sharing this node hash at the same time.
  mutable std::atomic<bool> ref_ready{false};
  mutable std::atomic_flag ref_lock = ATOMIC_FLAG_INIT;
  mutable Bytes cached_ref;

  // Disk-backed stub support: a stub carries only its 32-byte reference
  // (ref_ready is true from birth, so hashing a trie of stubs never touches
  // disk) and materializes kind/path/value/children lazily from `store` on
  // first structural access (detail::resolved).  `loaded` is the
  // publication flag for the materialized fields; the one-time load
  // serializes on ref_lock, which a stub's node_ref never contends (its
  // fast path always wins).
  mutable std::atomic<bool> loaded{true};
  const db::NodeStore* store = nullptr;

  /// Drops the memoized reference.  Callers must hold unique ownership of
  /// the node (mutation contract), so no locking is needed.
  void invalidate_ref() noexcept {
    ref_ready.store(false, std::memory_order_relaxed);
  }

  static std::shared_ptr<MptNode> leaf(Nibbles p, Bytes v) {
    auto n = std::make_shared<MptNode>();
    n->kind = Kind::kLeaf;
    n->path = std::move(p);
    n->value = std::move(v);
    return n;
  }
  static std::shared_ptr<MptNode> extension(Nibbles p,
                                            std::shared_ptr<MptNode> c) {
    BP_ASSERT(!p.empty());
    auto n = std::make_shared<MptNode>();
    n->kind = Kind::kExtension;
    n->path = std::move(p);
    n->child = std::move(c);
    return n;
  }
  static std::shared_ptr<MptNode> branch() {
    auto n = std::make_shared<MptNode>();
    n->kind = Kind::kBranch;
    return n;
  }
  /// Unloaded disk-backed stub addressed by its 32-byte hash reference.
  static std::shared_ptr<MptNode> stub(const Hash256& hash,
                                       const db::NodeStore* s) {
    auto n = std::make_shared<MptNode>();
    n->kind = Kind::kBranch;  // placeholder until loaded
    n->cached_ref.assign(hash.bytes.begin(), hash.bytes.end());
    n->store = s;
    n->loaded.store(false, std::memory_order_relaxed);
    n->ref_ready.store(true, std::memory_order_release);
    return n;
  }
};

// Encodes a node to RLP (yellow paper node composition function c).  Child
// references resolve through each child's memoized reference.
Bytes encode_node(const MptNode* node);

// Appends a child reference: inline RLP when < 32 bytes, else keccak hash.
void append_reference(rlp::Encoder& enc, const MptNode* node);

// The node's memoized reference (computing and caching it on first use).
const Bytes& node_ref(const MptNode* node);

// Materializes an unloaded stub from its store (read-through the global
// NodeCache).  Aborts on a missing or corrupt node — a stub's hash was
// produced by a persisted parent, so absence means the store broke its
// durability contract.
void load_stub(const MptNode* node);

/// Ensures structural fields (kind/path/value/children) are readable.
/// Every traversal step must pass through this before touching them.
inline const MptNode* resolved(const MptNode* node) {
  if (node != nullptr && !node->loaded.load(std::memory_order_acquire))
    load_stub(node);
  return node;
}

}  // namespace blockpilot::trie::detail
