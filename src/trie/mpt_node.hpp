// Internal MPT node representation and node encoding, shared between the
// trie implementation (mpt.cpp) and the proof generator (proof.cpp).
// Not part of the public API.
#pragma once

#include <array>
#include <memory>

#include "crypto/keccak.hpp"
#include "rlp/rlp.hpp"
#include "support/assert.hpp"
#include "trie/mpt.hpp"

namespace blockpilot::trie::detail {

struct MptNode {
  enum class Kind { kLeaf, kExtension, kBranch };
  Kind kind;

  // Leaf / extension:
  Nibbles path;
  Bytes value;                     // leaf value, or branch value slot
  std::unique_ptr<MptNode> child;  // extension child

  // Branch:
  std::array<std::unique_ptr<MptNode>, 16> children;

  static std::unique_ptr<MptNode> leaf(Nibbles p, Bytes v) {
    auto n = std::make_unique<MptNode>();
    n->kind = Kind::kLeaf;
    n->path = std::move(p);
    n->value = std::move(v);
    return n;
  }
  static std::unique_ptr<MptNode> extension(Nibbles p,
                                            std::unique_ptr<MptNode> c) {
    BP_ASSERT(!p.empty());
    auto n = std::make_unique<MptNode>();
    n->kind = Kind::kExtension;
    n->path = std::move(p);
    n->child = std::move(c);
    return n;
  }
  static std::unique_ptr<MptNode> branch() {
    auto n = std::make_unique<MptNode>();
    n->kind = Kind::kBranch;
    return n;
  }
};

// Encodes a node to RLP (yellow paper node composition function c).
Bytes encode_node(const MptNode* node);

// Appends a child reference: inline RLP when < 32 bytes, else keccak hash.
void append_reference(rlp::Encoder& enc, const MptNode* node);

}  // namespace blockpilot::trie::detail
