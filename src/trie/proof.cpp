#include "trie/proof.hpp"

#include <cstring>

#include "support/assert.hpp"
#include "trie/mpt_node.hpp"

namespace blockpilot::trie {
namespace {

using detail::MptNode;

std::size_t common_prefix(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

Proof prove(const MerklePatriciaTrie& trie,
            std::span<const std::uint8_t> key) {
  Proof proof;
  const Nibbles nibbles = to_nibbles(key);
  std::span<const std::uint8_t> remaining(nibbles);
  const MptNode* node = trie.root_node();

  while (node != nullptr) {
    detail::resolved(node);
    proof.nodes.push_back(detail::encode_node(node));
    switch (node->kind) {
      case MptNode::Kind::kLeaf:
        return proof;  // match or divergence — either way, the path ends
      case MptNode::Kind::kExtension: {
        const std::size_t cp = common_prefix(node->path, remaining);
        if (cp < node->path.size()) return proof;  // diverged: absence
        remaining = remaining.subspan(node->path.size());
        node = node->child.get();
        break;
      }
      case MptNode::Kind::kBranch: {
        if (remaining.empty()) return proof;  // value (or absence) here
        const std::uint8_t nib = remaining[0];
        remaining = remaining.subspan(1);
        node = node->children[nib].get();
        break;
      }
    }
  }
  return proof;
}

namespace {

/// Reference to the next node: either a 32-byte hash or an expected inline
/// encoding (for nodes shorter than 32 bytes).
struct ChildRef {
  bool is_hash = false;
  crypto::Digest hash{};
  rlp::Bytes inline_encoding;
  bool empty = true;
};

ChildRef ref_from_item(const rlp::Item& item) {
  ChildRef ref;
  if (item.is_list) {
    // Inline (< 32 byte) node embedded in the parent.
    ref.empty = false;
    ref.is_hash = false;
    ref.inline_encoding = rlp::encode_item(item);
    return ref;
  }
  if (item.str.empty()) return ref;  // nil child
  if (item.str.size() == 32) {
    ref.empty = false;
    ref.is_hash = true;
    std::memcpy(ref.hash.data(), item.str.data(), 32);
    return ref;
  }
  // A string that is neither empty nor 32 bytes cannot reference a node.
  ref.empty = true;
  return ref;
}

}  // namespace

ProofVerdict verify_proof(const Hash256& root,
                          std::span<const std::uint8_t> key,
                          const Proof& proof) {
  ProofVerdict verdict;

  // Empty trie: absence is proven by the canonical empty root alone.
  if (root == MerklePatriciaTrie::empty_root()) {
    verdict.ok = proof.nodes.empty();
    return verdict;
  }
  if (proof.nodes.empty()) return verdict;  // non-empty trie needs nodes

  const Nibbles nibbles = to_nibbles(key);
  std::span<const std::uint8_t> remaining(nibbles);

  ChildRef expected;
  expected.empty = false;
  expected.is_hash = true;
  expected.hash = root.bytes;

  for (std::size_t i = 0; i < proof.nodes.size(); ++i) {
    const rlp::Bytes& encoded = proof.nodes[i];
    // Link check against the parent's reference.
    if (expected.empty) return verdict;
    if (expected.is_hash) {
      const crypto::Digest digest = crypto::keccak256(std::span(encoded));
      if (digest != expected.hash) return verdict;
    } else if (encoded != expected.inline_encoding) {
      return verdict;
    }

    const rlp::Item item = rlp::decode(std::span(encoded));
    if (!item.is_list) return verdict;

    if (item.list.size() == 17) {  // branch
      if (remaining.empty()) {
        verdict.ok = true;
        if (!item.list[16].str.empty()) verdict.value = item.list[16].str;
        return verdict;
      }
      const std::uint8_t nib = remaining[0];
      remaining = remaining.subspan(1);
      expected = ref_from_item(item.list[nib]);
      if (expected.empty) {
        // Nil child on the key's path: valid absence proof iff this is the
        // final proof node.
        verdict.ok = (i + 1 == proof.nodes.size());
        return verdict;
      }
      continue;
    }

    if (item.list.size() == 2) {  // leaf or extension
      const auto [path, is_leaf] = hex_prefix_decode(std::span(item.list[0].str));
      if (is_leaf) {
        verdict.ok = (i + 1 == proof.nodes.size());
        if (verdict.ok && path.size() == remaining.size() &&
            std::equal(path.begin(), path.end(), remaining.begin())) {
          verdict.value = item.list[1].str;
        }
        return verdict;
      }
      // Extension.
      const std::size_t cp = common_prefix(path, remaining);
      if (cp < path.size()) {
        verdict.ok = (i + 1 == proof.nodes.size());  // divergence: absence
        return verdict;
      }
      remaining = remaining.subspan(path.size());
      expected = ref_from_item(item.list[1]);
      if (expected.empty) return verdict;  // extensions must have a child
      continue;
    }
    return verdict;  // malformed node
  }

  // Ran out of proof nodes while a child reference was still pending.
  return verdict;
}

}  // namespace blockpilot::trie
