#include "trie/node_cache.hpp"

#include <cstring>

#include "crypto/keccak.hpp"

namespace blockpilot::trie {

NodeCache::NodeCache(std::size_t capacity)
    : shard_capacity_((capacity + kShards - 1) / kShards) {}

NodeCache::Shard& NodeCache::shard_for(
    std::span<const std::uint8_t> encoding) {
  // Cheap stable shard choice: FNV over a prefix is enough to spread nodes.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const std::size_t probe = encoding.size() < 16 ? encoding.size() : 16;
  for (std::size_t i = 0; i < probe; ++i) {
    h ^= encoding[i];
    h *= 0x100000001b3ULL;
  }
  h ^= encoding.size();
  return shards_[h % kShards];
}

void NodeCache::evict_one(Shard& s) {
  const Hash256 victim = s.fifo.front();
  s.fifo.pop_front();
  const auto hit = s.by_hash.find(victim);
  if (hit != s.by_hash.end()) {
    s.by_encoding.erase(*hit->second);
    s.by_hash.erase(hit);
    ++s.evictions;
  }
}

Hash256 NodeCache::hash_of(std::span<const std::uint8_t> encoding) {
  const std::size_t cap = shard_capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return Hash256{crypto::keccak256(encoding)};

  Shard& s = shard_for(encoding);
  Bytes key(encoding.begin(), encoding.end());
  std::scoped_lock lk(s.mu);
  const auto it = s.by_encoding.find(key);
  if (it != s.by_encoding.end()) {
    ++s.hits;
    return it->second;
  }
  ++s.misses;
  const Hash256 digest{crypto::keccak256(encoding)};
  while (s.by_encoding.size() >= cap && !s.fifo.empty()) evict_one(s);
  const auto [slot, inserted] = s.by_encoding.emplace(std::move(key), digest);
  if (inserted) {
    s.by_hash[digest] = &slot->first;
    s.fifo.push_back(digest);
  }
  return digest;
}

std::optional<std::vector<std::uint8_t>> NodeCache::encoding_of(
    const Hash256& h) const {
  for (const Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    const auto it = s.by_hash.find(h);
    if (it != s.by_hash.end()) return *it->second;
  }
  return std::nullopt;
}

NodeCache::Stats NodeCache::stats() const {
  Stats out;
  out.capacity = shard_capacity_.load(std::memory_order_relaxed) * kShards;
  for (const Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.entries += s.by_encoding.size();
  }
  return out;
}

void NodeCache::clear() {
  for (Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    s.by_encoding.clear();
    s.by_hash.clear();
    s.fifo.clear();
  }
}

void NodeCache::reset_stats() {
  for (Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    s.hits = s.misses = s.evictions = 0;
  }
}

void NodeCache::set_capacity(std::size_t capacity) {
  const std::size_t per_shard = (capacity + kShards - 1) / kShards;
  shard_capacity_.store(per_shard, std::memory_order_relaxed);
  for (Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    while (s.by_encoding.size() > per_shard && !s.fifo.empty()) evict_one(s);
  }
}

std::size_t NodeCache::capacity() const {
  return shard_capacity_.load(std::memory_order_relaxed) * kShards;
}

NodeCache& NodeCache::global() {
  static NodeCache cache;
  return cache;
}

}  // namespace blockpilot::trie
