#include "trie/node_cache.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/keccak.hpp"

namespace blockpilot::trie {

NodeCache::NodeCache(std::size_t capacity_bytes)
    : shard_capacity_((capacity_bytes + kShards - 1) / kShards) {}

namespace {

// splitmix64 finalizer: derives the sketch's 4 counter indexes from one
// fingerprint without storing 4 hashes.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void NodeCache::FreqSketch::record(std::uint64_t fp) noexcept {
  std::uint64_t h = fp;
  for (int i = 0; i < 4; ++i) {
    h = mix64(h);
    std::uint8_t& c = counters[h & (kCounters - 1)];
    if (c < kMaxCount) ++c;
  }
  if (++samples >= kSamplePeriod) {
    // Aging: halve every counter so popularity is recent, not eternal.
    for (std::uint8_t& c : counters) c >>= 1;
    samples >>= 1;
  }
}

std::uint32_t NodeCache::FreqSketch::estimate(std::uint64_t fp) const noexcept {
  std::uint32_t est = kMaxCount;
  std::uint64_t h = fp;
  for (int i = 0; i < 4; ++i) {
    h = mix64(h);
    est = std::min<std::uint32_t>(est, counters[h & (kCounters - 1)]);
  }
  return est;
}

void NodeCache::FreqSketch::reset() noexcept {
  counters.fill(0);
  samples = 0;
}

NodeCache::Shard& NodeCache::shard_for(
    std::span<const std::uint8_t> encoding) {
  // Cheap stable shard choice: FNV over a prefix is enough to spread nodes.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const std::size_t probe = encoding.size() < 16 ? encoding.size() : 16;
  for (std::size_t i = 0; i < probe; ++i) {
    h ^= encoding[i];
    h *= 0x100000001b3ULL;
  }
  h ^= encoding.size();
  return shards_[h % kShards];
}

// CLOCK sweep to the next victim.  Referenced entries get their second
// chance (bit cleared, hand advances); the sweep stops at the first
// unreferenced entry.  Terminates in at most two passes over the ring
// because every skip clears a bit.  Precondition: the ring is non-empty.
NodeCache::MapNode* NodeCache::clock_victim(Shard& s) {
  for (;;) {
    if (s.hand == s.ring.end()) s.hand = s.ring.begin();
    MapNode* node = *s.hand;
    if (node->second.referenced) {
      node->second.referenced = false;
      ++s.hand;
      continue;
    }
    return node;
  }
}

// One CLOCK sweep step ending in an eviction of the current victim.
void NodeCache::evict_one(Shard& s) {
  MapNode* node = clock_victim(s);
  s.bytes -= entry_bytes(node->first.size());
  const auto rit = s.by_hash.find(node->second.hash);
  if (rit != s.by_hash.end() && rit->second == node) s.by_hash.erase(rit);
  s.hand = s.ring.erase(s.hand);
  const auto mit = s.by_encoding.find(node->first);
  s.by_encoding.erase(mit);
  ++s.evictions;
}

// Sketch fingerprint: FNV-1a over the whole encoding (the same function
// BytesHash uses for the map, but computable from the span directly).
static std::uint64_t fingerprint_of(
    std::span<const std::uint8_t> encoding) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : encoding) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Hash256 NodeCache::hash_of(std::span<const std::uint8_t> encoding) {
  const std::size_t cap = shard_capacity_.load(std::memory_order_relaxed);
  if (cap == 0) {
    bypassed_.fetch_add(1, std::memory_order_relaxed);
    return Hash256{crypto::keccak256(encoding)};
  }

  Shard& s = shard_for(encoding);
  Bytes key(encoding.begin(), encoding.end());
  std::scoped_lock lk(s.mu);
  const auto it = s.by_encoding.find(key);
  if (it != s.by_encoding.end()) {
    ++s.hits;
    it->second.referenced = true;  // second chance on the next sweep
    s.sketch.record(it->second.fp);
    return it->second.hash;
  }
  ++s.misses;
  const Hash256 digest{crypto::keccak256(encoding)};
  const std::uint64_t fp = fingerprint_of(encoding);
  s.sketch.record(fp);
  const std::size_t need = entry_bytes(key.size());
  if (need > cap) {  // jumbo entry: never worth a whole shard
    bypassed_.fetch_add(1, std::memory_order_relaxed);
    return digest;
  }
  if (s.bytes + need > cap && !s.ring.empty()) {
    // TinyLFU admission: a full shard only trades its CLOCK victim for a
    // candidate at least as frequent.  Ties admit, so a workload with no
    // re-use (every estimate 1) degenerates to plain CLOCK/FIFO; one-shot
    // scan traffic against a reheated working set is rejected here.
    MapNode* victim = clock_victim(s);
    if (s.sketch.estimate(fp) < s.sketch.estimate(victim->second.fp)) {
      ++s.rejected;
      return digest;
    }
  }
  while (s.bytes + need > cap && !s.ring.empty()) evict_one(s);
  const auto [slot, inserted] = s.by_encoding.emplace(
      std::move(key), Entry{digest, /*referenced=*/false, fp});
  if (inserted) {
    MapNode* node = &*slot;
    // Insert just behind the hand: the new entry is the last the current
    // sweep cycle examines, so with no intervening hits the eviction order
    // is exactly insertion order (FIFO with second chances).
    s.ring.insert(s.hand, node);
    s.by_hash[digest] = node;
    s.bytes += need;
  }
  return digest;
}

std::optional<std::vector<std::uint8_t>> NodeCache::encoding_of(
    const Hash256& h) {
  for (Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    const auto it = s.by_hash.find(h);
    if (it != s.by_hash.end()) {
      it->second->second.referenced = true;  // CLOCK second chance
      return it->second->first;
    }
  }
  return std::nullopt;
}

NodeCache::Stats NodeCache::stats() const {
  Stats out;
  out.capacity = shard_capacity_.load(std::memory_order_relaxed) * kShards;
  out.bypassed = bypassed_.load(std::memory_order_relaxed);
  out.load_hits = load_hits_.load(std::memory_order_relaxed);
  out.load_misses = load_misses_.load(std::memory_order_relaxed);
  for (const Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.rejected += s.rejected;
    out.entries += s.by_encoding.size();
    out.bytes += s.bytes;
  }
  return out;
}

void NodeCache::clear() {
  for (Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    s.by_encoding.clear();
    s.by_hash.clear();
    s.ring.clear();
    s.hand = s.ring.end();
    s.sketch.reset();
    s.bytes = 0;
  }
}

void NodeCache::reset_stats() {
  for (Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    s.hits = s.misses = s.evictions = s.rejected = 0;
  }
  bypassed_.store(0, std::memory_order_relaxed);
  load_hits_.store(0, std::memory_order_relaxed);
  load_misses_.store(0, std::memory_order_relaxed);
}

void NodeCache::set_capacity(std::size_t capacity_bytes) {
  const std::size_t per_shard = (capacity_bytes + kShards - 1) / kShards;
  shard_capacity_.store(per_shard, std::memory_order_relaxed);
  for (Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    while (s.bytes > per_shard && !s.ring.empty()) evict_one(s);
  }
}

std::size_t NodeCache::capacity() const {
  return shard_capacity_.load(std::memory_order_relaxed) * kShards;
}

NodeCache& NodeCache::global() {
  static NodeCache cache;
  return cache;
}

}  // namespace blockpilot::trie
