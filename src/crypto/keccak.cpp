#include "crypto/keccak.hpp"

#include <cstring>

namespace blockpilot::crypto {
namespace {

constexpr std::array<std::uint64_t, 24> kRoundConstants = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr std::array<int, 25> kRotations = {
    0,  1,  62, 28, 27,  //
    36, 44, 6,  55, 20,  //
    3,  10, 43, 25, 39,  //
    41, 45, 15, 21, 8,   //
    18, 2,  61, 56, 14,
};

constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return k == 0 ? x : (x << k) | (x >> (64 - k));
}

void keccak_f1600(std::array<std::uint64_t, 25>& a) noexcept {
  for (int round = 0; round < 24; ++round) {
    // theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    for (int x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 25; y += 5) a[x + y] ^= d;
    }
    // rho + pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y)
        b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl64(a[x + 5 * y],
                                                  kRotations[x + 5 * y]);
    // chi
    for (int y = 0; y < 25; y += 5)
      for (int x = 0; x < 5; ++x)
        a[y + x] = b[y + x] ^ (~b[y + (x + 1) % 5] & b[y + (x + 2) % 5]);
    // iota
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

void Keccak256::update(std::span<const std::uint8_t> data) noexcept {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t take =
        std::min(kRate - buffered_, data.size() - offset);
    std::memcpy(buffer_.data() + buffered_, data.data() + offset, take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kRate) absorb_block();
  }
}

void Keccak256::absorb_block() noexcept {
  for (std::size_t i = 0; i < kRate / 8; ++i) {
    std::uint64_t lane;
    std::memcpy(&lane, buffer_.data() + 8 * i, 8);  // little-endian host
    state_[i] ^= lane;
  }
  keccak_f1600(state_);
  buffered_ = 0;
}

Digest Keccak256::finalize() noexcept {
  // Keccak (pre-NIST) multi-rate padding: 0x01 ... 0x80.
  buffer_[buffered_] = 0x01;
  std::memset(buffer_.data() + buffered_ + 1, 0, kRate - buffered_ - 1);
  buffer_[kRate - 1] |= 0x80;
  buffered_ = kRate;
  absorb_block();

  Digest out;
  std::memcpy(out.data(), state_.data(), out.size());
  state_ = {};
  buffered_ = 0;
  return out;
}

Digest keccak256(std::span<const std::uint8_t> data) noexcept {
  Keccak256 h;
  h.update(data);
  return h.finalize();
}

Digest keccak256(std::string_view data) noexcept {
  return keccak256(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

}  // namespace blockpilot::crypto
