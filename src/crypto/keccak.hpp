// Keccak-256 as used by Ethereum (original Keccak padding 0x01, NOT the
// NIST SHA3-256 variant whose domain byte is 0x06).
//
// Every state commitment in this system — trie node hashes, account storage
// roots, the world-state root that validators compare against the proposed
// block header — is a Keccak-256 digest, so this is a full Keccak-f[1600]
// implementation rather than a stand-in hash.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace blockpilot::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// One-shot Keccak-256 over a byte span.
Digest keccak256(std::span<const std::uint8_t> data) noexcept;

/// Convenience overload for string literals / std::string payloads.
Digest keccak256(std::string_view data) noexcept;

/// Incremental hasher for multi-part inputs (e.g. RLP streams).
class Keccak256 {
 public:
  Keccak256() noexcept = default;

  void update(std::span<const std::uint8_t> data) noexcept;
  Digest finalize() noexcept;  // resets the hasher afterwards

 private:
  void absorb_block() noexcept;

  static constexpr std::size_t kRate = 136;  // 1088-bit rate for Keccak-256
  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, kRate> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace blockpilot::crypto
