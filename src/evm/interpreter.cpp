#include "evm/interpreter.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/keccak.hpp"
#include "evm/gas.hpp"
#include "evm/opcodes.hpp"
#include "support/assert.hpp"

namespace blockpilot::evm {
namespace {

using state::ExecBuffer;
using state::StateKey;

/// Precomputes valid JUMPDEST positions (immediates of PUSH are skipped).
std::vector<bool> analyze_jumpdests(std::span<const std::uint8_t> code) {
  std::vector<bool> valid(code.size(), false);
  for (std::size_t pc = 0; pc < code.size();) {
    const std::uint8_t op = code[pc];
    std::size_t push_len = 0;
    if (op == static_cast<std::uint8_t>(Op::JUMPDEST)) valid[pc] = true;
    if (is_push(op, push_len)) {
      pc += 1 + push_len;
    } else {
      ++pc;
    }
  }
  return valid;
}

/// One interpreter frame.  All bounds, stack and gas checks signal failure
/// through `failed`, which the main loop translates into a result status.
struct Frame {
  std::span<const std::uint8_t> code;
  std::vector<bool> jumpdests;
  std::vector<U256> stack;
  std::vector<std::uint8_t> memory;
  std::uint64_t gas_left = 0;
  std::size_t pc = 0;
  Status failure = Status::kSuccess;  // set on abnormal termination
  bool done = false;
  Bytes output;
  Bytes return_data;  // output of the most recent CALL-family op (EIP-211)

  bool charge(std::uint64_t g) {
    if (gas_left < g) {
      fail(Status::kOutOfGas);
      return false;
    }
    gas_left -= g;
    return true;
  }

  void fail(Status s) {
    failure = s;
    done = true;
  }

  bool push(const U256& v) {
    if (stack.size() >= kMaxStack) {
      fail(Status::kInvalid);
      return false;
    }
    stack.push_back(v);
    return true;
  }

  // Pops are guarded by require() in the dispatch loop, so pop() can assume
  // availability.
  U256 pop() {
    BP_ASSERT(!stack.empty());
    U256 v = stack.back();
    stack.pop_back();
    return v;
  }

  bool require(std::size_t n) {
    if (stack.size() < n) {
      fail(Status::kInvalid);
      return false;
    }
    return true;
  }

  /// Expands memory to cover [offset, offset+size), charging the expansion
  /// gas delta.  Returns false (and fails the frame) on overflow or OOG.
  bool touch_memory(const U256& offset, const U256& size) {
    if (size.is_zero()) return true;
    if (!offset.fits64() || !size.fits64()) {
      fail(Status::kOutOfGas);  // unpayable expansion
      return false;
    }
    const std::uint64_t end = offset.low64() + size.low64();
    if (end < offset.low64() || end > (std::uint64_t{1} << 32)) {
      fail(Status::kOutOfGas);
      return false;
    }
    const std::uint64_t old_words = (memory.size() + 31) / 32;
    const std::uint64_t new_words = (end + 31) / 32;
    if (new_words > old_words) {
      const std::uint64_t delta =
          gas::memory_cost(new_words) - gas::memory_cost(old_words);
      if (!charge(delta)) return false;
      memory.resize(new_words * 32, 0);
    }
    return true;
  }

  /// Bounds-checked memory read helper (touch_memory must precede).
  std::span<const std::uint8_t> mem_span(std::uint64_t offset,
                                         std::uint64_t size) const {
    BP_ASSERT(offset + size <= memory.size());
    return std::span(memory).subspan(offset, size);
  }
};

std::uint64_t words_for(std::uint64_t bytes) { return (bytes + 31) / 32; }

/// Reads 32 bytes from `data` at `offset`, zero-padded past the end
/// (CALLDATALOAD semantics).
U256 load_word_padded(std::span<const std::uint8_t> data, const U256& offset) {
  std::array<std::uint8_t, 32> word{};
  if (offset.fits64() && offset.low64() < data.size()) {
    const std::uint64_t off = offset.low64();
    const std::size_t n =
        std::min<std::size_t>(32, data.size() - static_cast<std::size_t>(off));
    std::memcpy(word.data(), data.data() + off, n);
  }
  return U256::from_be_bytes(std::span(word));
}

/// Copies from `src` (zero-padded) into frame memory; shared by
/// CALLDATACOPY and CODECOPY.
bool copy_padded(Frame& f, std::span<const std::uint8_t> src) {
  if (!f.require(3)) return false;
  const U256 mem_off = f.pop();
  const U256 src_off = f.pop();
  const U256 len = f.pop();
  if (!len.fits64()) {
    f.fail(Status::kOutOfGas);
    return false;
  }
  if (!f.charge(gas::kVeryLow + gas::kCopyWord * words_for(len.low64())))
    return false;
  if (!f.touch_memory(mem_off, len)) return false;
  if (len.is_zero()) return true;
  const std::uint64_t dst = mem_off.low64();
  for (std::uint64_t i = 0; i < len.low64(); ++i) {
    std::uint8_t b = 0;
    if (src_off.fits64()) {
      const std::uint64_t s = src_off.low64() + i;
      if (s >= src_off.low64() && s < src.size()) b = src[s];
    }
    f.memory[dst + i] = b;
  }
  return true;
}

void transfer(ExecBuffer& buffer, const Address& from, const Address& to,
              const U256& value) {
  if (value.is_zero()) return;
  const StateKey from_key = StateKey::balance(from);
  const StateKey to_key = StateKey::balance(to);
  const U256 from_bal = buffer.read(from_key);
  BP_ASSERT_MSG(from_bal >= value, "caller balance must be pre-checked");
  buffer.write(from_key, from_bal - value);
  const U256 to_bal = buffer.read(to_key);
  buffer.write(to_key, to_bal + value);
}

CallResult run_interpreter(ExecBuffer& buffer, TxContext& tx,
                           const Message& msg,
                           std::span<const std::uint8_t> code) {
  Frame f;
  f.code = code;
  f.jumpdests = analyze_jumpdests(code);
  f.gas_left = msg.gas;
  f.stack.reserve(64);

  CallResult result;

  while (!f.done) {
    if (f.pc >= f.code.size()) break;  // implicit STOP
    const std::uint8_t opcode = f.code[f.pc];

    std::size_t push_len = 0;
    if (is_push(opcode, push_len)) {
      if (!f.charge(gas::kVeryLow)) break;
      std::array<std::uint8_t, 32> imm{};
      const std::size_t avail =
          std::min(push_len, f.code.size() - f.pc - 1);
      std::memcpy(imm.data() + (32 - push_len), f.code.data() + f.pc + 1,
                  avail);
      if (!f.push(U256::from_be_bytes(std::span(imm).subspan(32 - push_len))))
        break;
      f.pc += 1 + push_len;
      continue;
    }
    if (opcode >= 0x80 && opcode <= 0x8f) {  // DUP1..DUP16
      const std::size_t n = opcode - 0x80 + 1;
      if (!f.charge(gas::kVeryLow) || !f.require(n)) break;
      if (!f.push(f.stack[f.stack.size() - n])) break;
      ++f.pc;
      continue;
    }
    if (opcode >= 0x90 && opcode <= 0x9f) {  // SWAP1..SWAP16
      const std::size_t n = opcode - 0x90 + 1;
      if (!f.charge(gas::kVeryLow) || !f.require(n + 1)) break;
      std::swap(f.stack.back(), f.stack[f.stack.size() - 1 - n]);
      ++f.pc;
      continue;
    }
    if (opcode >= 0xa0 && opcode <= 0xa4) {  // LOG0..LOG4
      if (msg.is_static) {
        f.fail(Status::kInvalid);  // logging mutates the receipt trie
        break;
      }
      const std::size_t topics = opcode - 0xa0;
      if (!f.require(2 + topics)) break;
      const U256 off = f.pop();
      const U256 len = f.pop();
      if (!len.fits64()) {
        f.fail(Status::kOutOfGas);
        break;
      }
      if (!f.charge(gas::kLog + gas::kLogTopic * topics +
                    gas::kLogData * len.low64()))
        break;
      if (!f.touch_memory(off, len)) break;
      LogRecord log;
      log.address = msg.to;
      for (std::size_t i = 0; i < topics; ++i) log.topics.push_back(f.pop());
      if (!len.is_zero()) {
        const auto data = f.mem_span(off.low64(), len.low64());
        log.data.assign(data.begin(), data.end());
      }
      result.logs.push_back(std::move(log));
      ++f.pc;
      continue;
    }

    switch (static_cast<Op>(opcode)) {
      case Op::STOP:
        f.done = true;
        break;

      // -- arithmetic --
      case Op::ADD: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a + b);
        ++f.pc;
        break;
      }
      case Op::MUL: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a * b);
        ++f.pc;
        break;
      }
      case Op::SUB: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a - b);
        ++f.pc;
        break;
      }
      case Op::DIV: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a / b);
        ++f.pc;
        break;
      }
      case Op::SDIV: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256::sdiv(a, b));
        ++f.pc;
        break;
      }
      case Op::MOD: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a % b);
        ++f.pc;
        break;
      }
      case Op::SMOD: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256::smod(a, b));
        ++f.pc;
        break;
      }
      case Op::ADDMOD: {
        if (!f.charge(gas::kMid) || !f.require(3)) break;
        const U256 a = f.pop(), b = f.pop(), m = f.pop();
        f.push(U256::addmod(a, b, m));
        ++f.pc;
        break;
      }
      case Op::MULMOD: {
        if (!f.charge(gas::kMid) || !f.require(3)) break;
        const U256 a = f.pop(), b = f.pop(), m = f.pop();
        f.push(U256::mulmod(a, b, m));
        ++f.pc;
        break;
      }
      case Op::EXP: {
        if (!f.require(2)) break;
        const U256 a = f.pop(), e = f.pop();
        const std::uint64_t exp_bytes =
            static_cast<std::uint64_t>((e.bit_length() + 7) / 8);
        if (!f.charge(gas::kExp + gas::kExpByte * exp_bytes)) break;
        f.push(U256::exp(a, e));
        ++f.pc;
        break;
      }
      case Op::SIGNEXTEND: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 k = f.pop(), x = f.pop();
        f.push(U256::signextend(k, x));
        ++f.pc;
        break;
      }

      // -- comparison / bitwise --
      case Op::LT: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{a < b ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::GT: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{a > b ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::SLT: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{U256::signed_less(a, b) ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::SGT: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{U256::signed_less(b, a) ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::EQ: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{a == b ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::ISZERO: {
        if (!f.charge(gas::kVeryLow) || !f.require(1)) break;
        const U256 a = f.pop();
        f.push(U256{a.is_zero() ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::AND: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a & b);
        ++f.pc;
        break;
      }
      case Op::OR: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a | b);
        ++f.pc;
        break;
      }
      case Op::XOR: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a ^ b);
        ++f.pc;
        break;
      }
      case Op::NOT: {
        if (!f.charge(gas::kVeryLow) || !f.require(1)) break;
        f.push(~f.pop());
        ++f.pc;
        break;
      }
      case Op::BYTE: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 i = f.pop(), x = f.pop();
        f.push(U256::byte(i, x));
        ++f.pc;
        break;
      }
      case Op::SHL: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 n = f.pop(), x = f.pop();
        f.push(n.fits64() && n.low64() < 256
                   ? x.shl(static_cast<unsigned>(n.low64()))
                   : U256{});
        ++f.pc;
        break;
      }
      case Op::SHR: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 n = f.pop(), x = f.pop();
        f.push(n.fits64() && n.low64() < 256
                   ? x.shr(static_cast<unsigned>(n.low64()))
                   : U256{});
        ++f.pc;
        break;
      }
      case Op::SAR: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 n = f.pop(), x = f.pop();
        const unsigned amount = n.fits64() && n.low64() < 256
                                    ? static_cast<unsigned>(n.low64())
                                    : 256;
        f.push(x.sar(amount >= 256 ? 255 : amount));  // saturating
        ++f.pc;
        break;
      }

      case Op::SHA3: {
        if (!f.require(2)) break;
        const U256 off = f.pop(), len = f.pop();
        if (!len.fits64()) {
          f.fail(Status::kOutOfGas);
          break;
        }
        if (!f.charge(gas::kSha3 + gas::kSha3Word * words_for(len.low64())))
          break;
        if (!f.touch_memory(off, len)) break;
        const auto data = len.is_zero()
                              ? std::span<const std::uint8_t>{}
                              : f.mem_span(off.low64(), len.low64());
        const crypto::Digest digest = crypto::keccak256(data);
        f.push(U256::from_be_bytes(std::span(digest)));
        ++f.pc;
        break;
      }

      // -- environment --
      case Op::ADDRESS: {
        if (!f.charge(gas::kBase)) break;
        f.push(msg.to.to_u256());
        ++f.pc;
        break;
      }
      case Op::BALANCE: {
        if (!f.require(1)) break;
        const Address a = Address::from_u256(f.pop());
        if (!f.charge(tx.warm_account(a) ? gas::kWarmAccess
                                         : gas::kColdAccountAccess))
          break;
        f.push(buffer.read(StateKey::balance(a)));
        ++f.pc;
        break;
      }
      case Op::ORIGIN: {
        if (!f.charge(gas::kBase)) break;
        f.push(tx.origin.to_u256());
        ++f.pc;
        break;
      }
      case Op::CALLER: {
        if (!f.charge(gas::kBase)) break;
        f.push(msg.caller.to_u256());
        ++f.pc;
        break;
      }
      case Op::CALLVALUE: {
        if (!f.charge(gas::kBase)) break;
        f.push(msg.value);
        ++f.pc;
        break;
      }
      case Op::CALLDATALOAD: {
        if (!f.charge(gas::kVeryLow) || !f.require(1)) break;
        f.push(load_word_padded(std::span(msg.data), f.pop()));
        ++f.pc;
        break;
      }
      case Op::CALLDATASIZE: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{msg.data.size()});
        ++f.pc;
        break;
      }
      case Op::CALLDATACOPY: {
        if (!copy_padded(f, std::span(msg.data))) break;
        ++f.pc;
        break;
      }
      case Op::CODESIZE: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.code.size()});
        ++f.pc;
        break;
      }
      case Op::CODECOPY: {
        if (!copy_padded(f, f.code)) break;
        ++f.pc;
        break;
      }
      case Op::GASPRICE: {
        if (!f.charge(gas::kBase)) break;
        f.push(tx.gas_price);
        ++f.pc;
        break;
      }
      case Op::EXTCODESIZE: {
        if (!f.require(1)) break;
        const Address a = Address::from_u256(f.pop());
        if (!f.charge(tx.warm_account(a) ? gas::kWarmAccess
                                         : gas::kColdAccountAccess))
          break;
        const auto ext = buffer.code(a);
        f.push(U256{ext == nullptr ? 0 : ext->size()});
        ++f.pc;
        break;
      }
      case Op::EXTCODEHASH: {
        if (!f.require(1)) break;
        const Address a = Address::from_u256(f.pop());
        if (!f.charge(tx.warm_account(a) ? gas::kWarmAccess
                                         : gas::kColdAccountAccess))
          break;
        // Simplification: code-less addresses hash to zero (we do not track
        // account existence separately from code).
        const auto ext = buffer.code(a);
        if (ext == nullptr || ext->empty()) {
          f.push(U256{});
        } else {
          const crypto::Digest digest = crypto::keccak256(std::span(*ext));
          f.push(U256::from_be_bytes(std::span(digest)));
        }
        ++f.pc;
        break;
      }
      case Op::RETURNDATASIZE: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.return_data.size()});
        ++f.pc;
        break;
      }
      case Op::RETURNDATACOPY: {
        if (!f.require(3)) break;
        const U256 mem_off = f.pop();
        const U256 data_off = f.pop();
        const U256 len = f.pop();
        if (!len.fits64()) {
          f.fail(Status::kOutOfGas);
          break;
        }
        if (!f.charge(gas::kVeryLow + gas::kCopyWord * words_for(len.low64())))
          break;
        // EIP-211: reading past the return-data buffer is an error, not a
        // zero-fill.
        if (!data_off.fits64() ||
            data_off.low64() + len.low64() < data_off.low64() ||
            data_off.low64() + len.low64() > f.return_data.size()) {
          f.fail(Status::kInvalid);
          break;
        }
        if (!f.touch_memory(mem_off, len)) break;
        if (!len.is_zero()) {
          std::memcpy(f.memory.data() + mem_off.low64(),
                      f.return_data.data() + data_off.low64(), len.low64());
        }
        ++f.pc;
        break;
      }

      // -- block context --
      case Op::COINBASE: {
        if (!f.charge(gas::kBase)) break;
        f.push(tx.block->coinbase.to_u256());
        ++f.pc;
        break;
      }
      case Op::TIMESTAMP: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{tx.block->timestamp});
        ++f.pc;
        break;
      }
      case Op::NUMBER: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{tx.block->number});
        ++f.pc;
        break;
      }
      case Op::PREVRANDAO: {
        if (!f.charge(gas::kBase)) break;
        f.push(tx.block->prevrandao);
        ++f.pc;
        break;
      }
      case Op::GASLIMIT: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{tx.block->gas_limit});
        ++f.pc;
        break;
      }
      case Op::CHAINID: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{tx.block->chain_id});
        ++f.pc;
        break;
      }
      case Op::SELFBALANCE: {
        if (!f.charge(gas::kLow)) break;
        f.push(buffer.read(StateKey::balance(msg.to)));
        ++f.pc;
        break;
      }

      // -- stack / memory / storage / flow --
      case Op::POP: {
        if (!f.charge(gas::kBase) || !f.require(1)) break;
        f.pop();
        ++f.pc;
        break;
      }
      case Op::MLOAD: {
        if (!f.charge(gas::kVeryLow) || !f.require(1)) break;
        const U256 off = f.pop();
        if (!f.touch_memory(off, U256{32})) break;
        f.push(U256::from_be_bytes(f.mem_span(off.low64(), 32)));
        ++f.pc;
        break;
      }
      case Op::MSTORE: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 off = f.pop();
        const U256 val = f.pop();
        if (!f.touch_memory(off, U256{32})) break;
        const auto be = val.to_be_bytes();
        std::memcpy(f.memory.data() + off.low64(), be.data(), 32);
        ++f.pc;
        break;
      }
      case Op::MSTORE8: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 off = f.pop();
        const U256 val = f.pop();
        if (!f.touch_memory(off, U256{1})) break;
        f.memory[off.low64()] = static_cast<std::uint8_t>(val.low64() & 0xff);
        ++f.pc;
        break;
      }
      case Op::SLOAD: {
        if (!f.require(1)) break;
        const StateKey key = StateKey::storage(msg.to, f.pop());
        if (!f.charge(tx.warm_slot(key) ? gas::kWarmAccess : gas::kColdSload))
          break;
        f.push(buffer.read(key));
        ++f.pc;
        break;
      }
      case Op::SSTORE: {
        if (msg.is_static) {
          f.fail(Status::kInvalid);  // state mutation in a static frame
          break;
        }
        if (!f.charge(gas::kSstore) || !f.require(2)) break;
        const U256 slot = f.pop();
        const U256 val = f.pop();
        const StateKey key = StateKey::storage(msg.to, slot);
        tx.warm_slot(key);  // a store warms the slot for later SLOADs
        buffer.write(key, val);
        ++f.pc;
        break;
      }
      case Op::JUMP: {
        if (!f.charge(gas::kMid) || !f.require(1)) break;
        const U256 dst = f.pop();
        if (!dst.fits64() || dst.low64() >= f.code.size() ||
            !f.jumpdests[static_cast<std::size_t>(dst.low64())]) {
          f.fail(Status::kInvalid);
          break;
        }
        f.pc = static_cast<std::size_t>(dst.low64());
        break;
      }
      case Op::JUMPI: {
        if (!f.charge(gas::kHigh) || !f.require(2)) break;
        const U256 dst = f.pop();
        const U256 cond = f.pop();
        if (cond.is_zero()) {
          ++f.pc;
          break;
        }
        if (!dst.fits64() || dst.low64() >= f.code.size() ||
            !f.jumpdests[static_cast<std::size_t>(dst.low64())]) {
          f.fail(Status::kInvalid);
          break;
        }
        f.pc = static_cast<std::size_t>(dst.low64());
        break;
      }
      case Op::PC: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.pc});
        ++f.pc;
        break;
      }
      case Op::MSIZE: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.memory.size()});
        ++f.pc;
        break;
      }
      case Op::GAS: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.gas_left});
        ++f.pc;
        break;
      }
      case Op::JUMPDEST: {
        if (!f.charge(gas::kJumpdest)) break;
        ++f.pc;
        break;
      }
      case Op::PUSH0: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{});
        ++f.pc;
        break;
      }

      case Op::CALL:
      case Op::DELEGATECALL:
      case Op::STATICCALL: {
        const Op kind = static_cast<Op>(opcode);
        const bool has_value = (kind == Op::CALL);
        if (!f.require(has_value ? 7 : 6)) break;
        const U256 gas_req = f.pop();
        const Address target = Address::from_u256(f.pop());
        const U256 value = has_value ? f.pop() : U256{};
        const U256 in_off = f.pop();
        const U256 in_len = f.pop();
        const U256 out_off = f.pop();
        const U256 out_len = f.pop();

        // A value-bearing CALL inside a static frame is a state mutation.
        if (msg.is_static && !value.is_zero()) {
          f.fail(Status::kInvalid);
          break;
        }

        const std::uint64_t access_cost = tx.warm_account(target)
                                              ? gas::kWarmAccess
                                              : gas::kColdAccountAccess;
        std::uint64_t extra = access_cost;
        if (!value.is_zero()) extra += gas::kCallValue;
        if (!f.charge(extra)) break;
        if (!f.touch_memory(in_off, in_len)) break;
        if (!f.touch_memory(out_off, out_len)) break;

        // EIP-150 all-but-one-64th forwarding rule.
        const std::uint64_t cap = f.gas_left - f.gas_left / 64;
        std::uint64_t fwd =
            gas_req.fits64() ? std::min(gas_req.low64(), cap) : cap;
        if (!f.charge(fwd)) break;
        if (!value.is_zero()) fwd += gas::kCallStipend;

        // Failure without execution: depth exhausted or insufficient funds.
        const bool too_deep = msg.depth + 1 > kMaxCallDepth;
        const bool broke = !value.is_zero() &&
                           buffer.read(StateKey::balance(msg.to)) < value;
        if (too_deep || broke) {
          f.gas_left += fwd;  // forwarded gas is returned untouched
          f.return_data.clear();
          f.push(U256{0});
          ++f.pc;
          break;
        }

        Message inner;
        if (kind == Op::DELEGATECALL) {
          // The target's code runs in OUR storage context with OUR caller
          // and value; nothing is transferred.
          inner.caller = msg.caller;
          inner.to = msg.to;
          inner.code_address = target;
          inner.value = msg.value;
          inner.transfer_value = false;
        } else {
          inner.caller = msg.to;
          inner.to = target;
          inner.code_address = target;
          inner.value = value;
        }
        inner.is_static = msg.is_static || kind == Op::STATICCALL;
        inner.gas = fwd;
        inner.depth = msg.depth + 1;
        if (!in_len.is_zero()) {
          const auto in = f.mem_span(in_off.low64(), in_len.low64());
          inner.data.assign(in.begin(), in.end());
        }

        const CallResult sub = execute_call(buffer, tx, inner);
        f.gas_left += sub.gas_left;
        if (sub.status == Status::kSuccess) {
          for (const auto& log : sub.logs) result.logs.push_back(log);
        }
        // Return-data buffer: the callee's output on success/revert,
        // cleared on exceptional halts (EIP-211).
        if (sub.status == Status::kSuccess || sub.status == Status::kRevert) {
          f.return_data = sub.output;
        } else {
          f.return_data.clear();
        }
        // Copy return data into the out region (truncated to out_len).
        if (!out_len.is_zero() && !sub.output.empty()) {
          const std::size_t n = std::min<std::size_t>(
              out_len.low64(), sub.output.size());
          std::memcpy(f.memory.data() + out_off.low64(), sub.output.data(),
                      n);
        }
        f.push(U256{sub.status == Status::kSuccess ? 1u : 0u});
        ++f.pc;
        break;
      }

      case Op::RETURN:
      case Op::REVERT: {
        if (!f.require(2)) break;
        const U256 off = f.pop(), len = f.pop();
        if (!f.touch_memory(off, len)) break;
        if (!len.is_zero()) {
          const auto data = f.mem_span(off.low64(), len.low64());
          f.output.assign(data.begin(), data.end());
        }
        if (static_cast<Op>(opcode) == Op::REVERT)
          f.failure = Status::kRevert;
        f.done = true;
        break;
      }

      case Op::INVALID:
      default:
        f.fail(Status::kInvalid);
        break;
    }
  }

  result.status = f.failure;
  // INVALID consumes all frame gas (EVM exceptional halt); REVERT keeps it.
  result.gas_left = (f.failure == Status::kSuccess ||
                     f.failure == Status::kRevert)
                        ? f.gas_left
                        : 0;
  result.output = std::move(f.output);
  if (result.status != Status::kSuccess) result.logs.clear();
  return result;
}

}  // namespace

std::string_view op_name(std::uint8_t opcode) noexcept {
  switch (static_cast<Op>(opcode)) {
    case Op::STOP: return "STOP";
    case Op::ADD: return "ADD";
    case Op::MUL: return "MUL";
    case Op::SUB: return "SUB";
    case Op::DIV: return "DIV";
    case Op::SDIV: return "SDIV";
    case Op::MOD: return "MOD";
    case Op::SMOD: return "SMOD";
    case Op::ADDMOD: return "ADDMOD";
    case Op::MULMOD: return "MULMOD";
    case Op::EXP: return "EXP";
    case Op::SIGNEXTEND: return "SIGNEXTEND";
    case Op::LT: return "LT";
    case Op::GT: return "GT";
    case Op::SLT: return "SLT";
    case Op::SGT: return "SGT";
    case Op::EQ: return "EQ";
    case Op::ISZERO: return "ISZERO";
    case Op::AND: return "AND";
    case Op::OR: return "OR";
    case Op::XOR: return "XOR";
    case Op::NOT: return "NOT";
    case Op::BYTE: return "BYTE";
    case Op::SHL: return "SHL";
    case Op::SHR: return "SHR";
    case Op::SAR: return "SAR";
    case Op::SHA3: return "SHA3";
    case Op::ADDRESS: return "ADDRESS";
    case Op::BALANCE: return "BALANCE";
    case Op::ORIGIN: return "ORIGIN";
    case Op::CALLER: return "CALLER";
    case Op::CALLVALUE: return "CALLVALUE";
    case Op::CALLDATALOAD: return "CALLDATALOAD";
    case Op::CALLDATASIZE: return "CALLDATASIZE";
    case Op::CALLDATACOPY: return "CALLDATACOPY";
    case Op::CODESIZE: return "CODESIZE";
    case Op::CODECOPY: return "CODECOPY";
    case Op::GASPRICE: return "GASPRICE";
    case Op::COINBASE: return "COINBASE";
    case Op::TIMESTAMP: return "TIMESTAMP";
    case Op::NUMBER: return "NUMBER";
    case Op::PREVRANDAO: return "PREVRANDAO";
    case Op::GASLIMIT: return "GASLIMIT";
    case Op::CHAINID: return "CHAINID";
    case Op::SELFBALANCE: return "SELFBALANCE";
    case Op::POP: return "POP";
    case Op::MLOAD: return "MLOAD";
    case Op::MSTORE: return "MSTORE";
    case Op::MSTORE8: return "MSTORE8";
    case Op::EXTCODESIZE: return "EXTCODESIZE";
    case Op::EXTCODEHASH: return "EXTCODEHASH";
    case Op::RETURNDATASIZE: return "RETURNDATASIZE";
    case Op::RETURNDATACOPY: return "RETURNDATACOPY";
    case Op::DELEGATECALL: return "DELEGATECALL";
    case Op::STATICCALL: return "STATICCALL";
    case Op::SLOAD: return "SLOAD";
    case Op::SSTORE: return "SSTORE";
    case Op::JUMP: return "JUMP";
    case Op::JUMPI: return "JUMPI";
    case Op::PC: return "PC";
    case Op::MSIZE: return "MSIZE";
    case Op::GAS: return "GAS";
    case Op::JUMPDEST: return "JUMPDEST";
    case Op::PUSH0: return "PUSH0";
    case Op::LOG0: return "LOG0";
    case Op::LOG1: return "LOG1";
    case Op::LOG2: return "LOG2";
    case Op::LOG3: return "LOG3";
    case Op::LOG4: return "LOG4";
    case Op::CALL: return "CALL";
    case Op::RETURN: return "RETURN";
    case Op::REVERT: return "REVERT";
    case Op::INVALID: return "INVALID";
    default: break;
  }
  if (opcode >= 0x60 && opcode <= 0x7f) return "PUSH";
  if (opcode >= 0x80 && opcode <= 0x8f) return "DUP";
  if (opcode >= 0x90 && opcode <= 0x9f) return "SWAP";
  return "UNKNOWN";
}

CallResult execute_call(state::ExecBuffer& buffer, TxContext& tx,
                        const Message& msg) {
  const std::size_t checkpoint = buffer.checkpoint();
  tx.warm_account(msg.to);

  if (msg.transfer_value && !msg.value.is_zero()) {
    transfer(buffer, msg.caller, msg.to, msg.value);
  }

  // DELEGATECALL runs foreign code in this frame's storage context.
  const Address code_addr =
      msg.code_address.is_zero() ? msg.to : msg.code_address;
  const auto code = buffer.code(code_addr);
  CallResult result;
  if (code == nullptr || code->empty()) {
    result.status = Status::kSuccess;
    result.gas_left = msg.gas;
    return result;
  }

  result = run_interpreter(buffer, tx, msg, std::span(*code));
  if (result.status != Status::kSuccess) buffer.revert_to(checkpoint);
  return result;
}

}  // namespace blockpilot::evm
