// Two interpreters live here, selected by TxContext::use_reference_interpreter:
//
//  * run_interpreter_fast — the production path.  Resolves a shared
//    CodeAnalysis by code hash, then dispatches through a dense function
//    -pointer table.  Gas and stack are validated once per basic block:
//    block entry charges the pre-summed static gas and checks the
//    pre-computed min/max stack heights, and the op bodies inside the
//    block skip per-op charge/require/overflow checks entirely.
//  * run_interpreter_reference — the frozen pre-analysis interpreter
//    (per-frame jumpdest scan, per-op gas charges through one big
//    switch).  Kept verbatim as the differential oracle: tests execute
//    both paths over the fuzz corpus and require bit-identical
//    {status, gas_left, output, logs, write set}.
//
// Why the fast path is bit-identical (not just equivalent-on-success):
//
//  1. Block entry either (a) verifies gas >= static sum AND the stack
//     pre-checks, charges the sum and runs the block unchecked, or (b)
//     flips the frame to `checked` mode, in which every op body replays
//     the reference's exact charge/require order — so any block the
//     reference would fail is executed with reference accounting.
//  2. A *dynamic* charge (memory expansion, warm/cold access, copy/log
//     /hash size costs) that fails mid-block in fast mode "degrades":
//     the frame refunds the static gas of the ops strictly after the
//     current one (CodeAnalysis::trailing_gas), flips to checked mode
//     and retries.  At that point gas_left equals the reference's
//     exactly (the current op's own pre-charged static stands in both),
//     so the retry fails — or succeeds — precisely when the reference's
//     charge does, reproducing the exact out-of-gas point.
//  3. Ops that *observe* gas_left (GAS, and the CALL family via the
//     EIP-150 63/64 cap) are basic-block terminators, so their trailing
//     static gas is zero and the observed value is exact by construction.
//
// kInvalid and kOutOfGas zero the frame's gas and revert its writes, so
// charge-order differences on failing paths are unobservable; the rules
// above make every *observable* quantity match the reference bit for bit.
#include "evm/interpreter.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

#include "crypto/keccak.hpp"
#include "evm/code_analysis.hpp"
#include "evm/gas.hpp"
#include "evm/opcodes.hpp"
#include "support/assert.hpp"

namespace blockpilot::evm {
namespace {

using state::ExecBuffer;
using state::StateKey;

std::uint64_t words_for(std::uint64_t bytes) { return (bytes + 31) / 32; }

/// Reads 32 bytes from `data` at `offset`, zero-padded past the end
/// (CALLDATALOAD semantics).
U256 load_word_padded(std::span<const std::uint8_t> data, const U256& offset) {
  std::array<std::uint8_t, 32> word{};
  if (offset.fits64() && offset.low64() < data.size()) {
    const std::uint64_t off = offset.low64();
    const std::size_t n =
        std::min<std::size_t>(32, data.size() - static_cast<std::size_t>(off));
    std::memcpy(word.data(), data.data() + off, n);
  }
  return U256::from_be_bytes(std::span(word));
}

void transfer(ExecBuffer& buffer, const Address& from, const Address& to,
              const U256& value) {
  if (value.is_zero()) return;
  const StateKey from_key = StateKey::balance(from);
  const StateKey to_key = StateKey::balance(to);
  const U256 from_bal = buffer.read(from_key);
  BP_ASSERT_MSG(from_bal >= value, "caller balance must be pre-checked");
  buffer.write(from_key, from_bal - value);
  const U256 to_bal = buffer.read(to_key);
  buffer.write(to_key, to_bal + value);
}

// ===========================================================================
// Reference interpreter — FROZEN.  This is the pre-analysis implementation,
// kept byte-for-byte as the differential oracle for the fast path.  Do not
// "improve" it; change the fast path and let the diff gate prove equality.
// ===========================================================================

/// Precomputes valid JUMPDEST positions (immediates of PUSH are skipped).
std::vector<bool> analyze_jumpdests(std::span<const std::uint8_t> code) {
  std::vector<bool> valid(code.size(), false);
  for (std::size_t pc = 0; pc < code.size();) {
    const std::uint8_t op = code[pc];
    std::size_t push_len = 0;
    if (op == static_cast<std::uint8_t>(Op::JUMPDEST)) valid[pc] = true;
    if (is_push(op, push_len)) {
      pc += 1 + push_len;
    } else {
      ++pc;
    }
  }
  return valid;
}

/// One interpreter frame.  All bounds, stack and gas checks signal failure
/// through `failed`, which the main loop translates into a result status.
struct Frame {
  std::span<const std::uint8_t> code;
  std::vector<bool> jumpdests;
  std::vector<U256> stack;
  std::vector<std::uint8_t> memory;
  std::uint64_t gas_left = 0;
  std::size_t pc = 0;
  Status failure = Status::kSuccess;  // set on abnormal termination
  bool done = false;
  Bytes output;
  Bytes return_data;  // output of the most recent CALL-family op (EIP-211)

  bool charge(std::uint64_t g) {
    if (gas_left < g) {
      fail(Status::kOutOfGas);
      return false;
    }
    gas_left -= g;
    return true;
  }

  void fail(Status s) {
    failure = s;
    done = true;
  }

  bool push(const U256& v) {
    if (stack.size() >= kMaxStack) {
      fail(Status::kInvalid);
      return false;
    }
    stack.push_back(v);
    return true;
  }

  // Pops are guarded by require() in the dispatch loop, so pop() can assume
  // availability.
  U256 pop() {
    BP_ASSERT(!stack.empty());
    U256 v = stack.back();
    stack.pop_back();
    return v;
  }

  bool require(std::size_t n) {
    if (stack.size() < n) {
      fail(Status::kInvalid);
      return false;
    }
    return true;
  }

  /// Expands memory to cover [offset, offset+size), charging the expansion
  /// gas delta.  Returns false (and fails the frame) on overflow or OOG.
  bool touch_memory(const U256& offset, const U256& size) {
    if (size.is_zero()) return true;
    if (!offset.fits64() || !size.fits64()) {
      fail(Status::kOutOfGas);  // unpayable expansion
      return false;
    }
    const std::uint64_t end = offset.low64() + size.low64();
    if (end < offset.low64() || end > (std::uint64_t{1} << 32)) {
      fail(Status::kOutOfGas);
      return false;
    }
    const std::uint64_t old_words = (memory.size() + 31) / 32;
    const std::uint64_t new_words = (end + 31) / 32;
    if (new_words > old_words) {
      const std::uint64_t delta =
          gas::memory_cost(new_words) - gas::memory_cost(old_words);
      if (!charge(delta)) return false;
      memory.resize(new_words * 32, 0);
    }
    return true;
  }

  /// Bounds-checked memory read helper (touch_memory must precede).
  std::span<const std::uint8_t> mem_span(std::uint64_t offset,
                                         std::uint64_t size) const {
    BP_ASSERT(offset + size <= memory.size());
    return std::span(memory).subspan(offset, size);
  }
};

/// Copies from `src` (zero-padded) into frame memory; shared by
/// CALLDATACOPY and CODECOPY.
bool copy_padded(Frame& f, std::span<const std::uint8_t> src) {
  if (!f.require(3)) return false;
  const U256 mem_off = f.pop();
  const U256 src_off = f.pop();
  const U256 len = f.pop();
  if (!len.fits64()) {
    f.fail(Status::kOutOfGas);
    return false;
  }
  if (!f.charge(gas::kVeryLow + gas::kCopyWord * words_for(len.low64())))
    return false;
  if (!f.touch_memory(mem_off, len)) return false;
  if (len.is_zero()) return true;
  const std::uint64_t dst = mem_off.low64();
  for (std::uint64_t i = 0; i < len.low64(); ++i) {
    std::uint8_t b = 0;
    if (src_off.fits64()) {
      const std::uint64_t s = src_off.low64() + i;
      if (s >= src_off.low64() && s < src.size()) b = src[s];
    }
    f.memory[dst + i] = b;
  }
  return true;
}

CallResult run_interpreter_reference(ExecBuffer& buffer, TxContext& tx,
                                     const Message& msg,
                                     std::span<const std::uint8_t> code) {
  Frame f;
  f.code = code;
  f.jumpdests = analyze_jumpdests(code);
  f.gas_left = msg.gas;
  f.stack.reserve(64);

  CallResult result;

  while (!f.done) {
    if (f.pc >= f.code.size()) break;  // implicit STOP
    const std::uint8_t opcode = f.code[f.pc];

    std::size_t push_len = 0;
    if (is_push(opcode, push_len)) {
      if (!f.charge(gas::kVeryLow)) break;
      std::array<std::uint8_t, 32> imm{};
      const std::size_t avail =
          std::min(push_len, f.code.size() - f.pc - 1);
      std::memcpy(imm.data() + (32 - push_len), f.code.data() + f.pc + 1,
                  avail);
      if (!f.push(U256::from_be_bytes(std::span(imm).subspan(32 - push_len))))
        break;
      f.pc += 1 + push_len;
      continue;
    }
    if (opcode >= 0x80 && opcode <= 0x8f) {  // DUP1..DUP16
      const std::size_t n = opcode - 0x80 + 1;
      if (!f.charge(gas::kVeryLow) || !f.require(n)) break;
      if (!f.push(f.stack[f.stack.size() - n])) break;
      ++f.pc;
      continue;
    }
    if (opcode >= 0x90 && opcode <= 0x9f) {  // SWAP1..SWAP16
      const std::size_t n = opcode - 0x90 + 1;
      if (!f.charge(gas::kVeryLow) || !f.require(n + 1)) break;
      std::swap(f.stack.back(), f.stack[f.stack.size() - 1 - n]);
      ++f.pc;
      continue;
    }
    if (opcode >= 0xa0 && opcode <= 0xa4) {  // LOG0..LOG4
      if (msg.is_static) {
        f.fail(Status::kInvalid);  // logging mutates the receipt trie
        break;
      }
      const std::size_t topics = opcode - 0xa0;
      if (!f.require(2 + topics)) break;
      const U256 off = f.pop();
      const U256 len = f.pop();
      if (!len.fits64()) {
        f.fail(Status::kOutOfGas);
        break;
      }
      if (!f.charge(gas::kLog + gas::kLogTopic * topics +
                    gas::kLogData * len.low64()))
        break;
      if (!f.touch_memory(off, len)) break;
      LogRecord log;
      log.address = msg.to;
      for (std::size_t i = 0; i < topics; ++i) log.topics.push_back(f.pop());
      if (!len.is_zero()) {
        const auto data = f.mem_span(off.low64(), len.low64());
        log.data.assign(data.begin(), data.end());
      }
      result.logs.push_back(std::move(log));
      ++f.pc;
      continue;
    }

    switch (static_cast<Op>(opcode)) {
      case Op::STOP:
        f.done = true;
        break;

      // -- arithmetic --
      case Op::ADD: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a + b);
        ++f.pc;
        break;
      }
      case Op::MUL: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a * b);
        ++f.pc;
        break;
      }
      case Op::SUB: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a - b);
        ++f.pc;
        break;
      }
      case Op::DIV: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a / b);
        ++f.pc;
        break;
      }
      case Op::SDIV: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256::sdiv(a, b));
        ++f.pc;
        break;
      }
      case Op::MOD: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a % b);
        ++f.pc;
        break;
      }
      case Op::SMOD: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256::smod(a, b));
        ++f.pc;
        break;
      }
      case Op::ADDMOD: {
        if (!f.charge(gas::kMid) || !f.require(3)) break;
        const U256 a = f.pop(), b = f.pop(), m = f.pop();
        f.push(U256::addmod(a, b, m));
        ++f.pc;
        break;
      }
      case Op::MULMOD: {
        if (!f.charge(gas::kMid) || !f.require(3)) break;
        const U256 a = f.pop(), b = f.pop(), m = f.pop();
        f.push(U256::mulmod(a, b, m));
        ++f.pc;
        break;
      }
      case Op::EXP: {
        if (!f.require(2)) break;
        const U256 a = f.pop(), e = f.pop();
        const std::uint64_t exp_bytes =
            static_cast<std::uint64_t>((e.bit_length() + 7) / 8);
        if (!f.charge(gas::kExp + gas::kExpByte * exp_bytes)) break;
        f.push(U256::exp(a, e));
        ++f.pc;
        break;
      }
      case Op::SIGNEXTEND: {
        if (!f.charge(gas::kLow) || !f.require(2)) break;
        const U256 k = f.pop(), x = f.pop();
        f.push(U256::signextend(k, x));
        ++f.pc;
        break;
      }

      // -- comparison / bitwise --
      case Op::LT: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{a < b ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::GT: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{a > b ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::SLT: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{U256::signed_less(a, b) ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::SGT: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{U256::signed_less(b, a) ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::EQ: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(U256{a == b ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::ISZERO: {
        if (!f.charge(gas::kVeryLow) || !f.require(1)) break;
        const U256 a = f.pop();
        f.push(U256{a.is_zero() ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Op::AND: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a & b);
        ++f.pc;
        break;
      }
      case Op::OR: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a | b);
        ++f.pc;
        break;
      }
      case Op::XOR: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 a = f.pop(), b = f.pop();
        f.push(a ^ b);
        ++f.pc;
        break;
      }
      case Op::NOT: {
        if (!f.charge(gas::kVeryLow) || !f.require(1)) break;
        f.push(~f.pop());
        ++f.pc;
        break;
      }
      case Op::BYTE: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 i = f.pop(), x = f.pop();
        f.push(U256::byte(i, x));
        ++f.pc;
        break;
      }
      case Op::SHL: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 n = f.pop(), x = f.pop();
        f.push(n.fits64() && n.low64() < 256
                   ? x.shl(static_cast<unsigned>(n.low64()))
                   : U256{});
        ++f.pc;
        break;
      }
      case Op::SHR: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 n = f.pop(), x = f.pop();
        f.push(n.fits64() && n.low64() < 256
                   ? x.shr(static_cast<unsigned>(n.low64()))
                   : U256{});
        ++f.pc;
        break;
      }
      case Op::SAR: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 n = f.pop(), x = f.pop();
        const unsigned amount = n.fits64() && n.low64() < 256
                                    ? static_cast<unsigned>(n.low64())
                                    : 256;
        f.push(x.sar(amount >= 256 ? 255 : amount));  // saturating
        ++f.pc;
        break;
      }

      case Op::SHA3: {
        if (!f.require(2)) break;
        const U256 off = f.pop(), len = f.pop();
        if (!len.fits64()) {
          f.fail(Status::kOutOfGas);
          break;
        }
        if (!f.charge(gas::kSha3 + gas::kSha3Word * words_for(len.low64())))
          break;
        if (!f.touch_memory(off, len)) break;
        const auto data = len.is_zero()
                              ? std::span<const std::uint8_t>{}
                              : f.mem_span(off.low64(), len.low64());
        const crypto::Digest digest = crypto::keccak256(data);
        f.push(U256::from_be_bytes(std::span(digest)));
        ++f.pc;
        break;
      }

      // -- environment --
      case Op::ADDRESS: {
        if (!f.charge(gas::kBase)) break;
        f.push(msg.to.to_u256());
        ++f.pc;
        break;
      }
      case Op::BALANCE: {
        if (!f.require(1)) break;
        const Address a = Address::from_u256(f.pop());
        if (!f.charge(tx.warm_account(a) ? gas::kWarmAccess
                                         : gas::kColdAccountAccess))
          break;
        f.push(buffer.read(StateKey::balance(a)));
        ++f.pc;
        break;
      }
      case Op::ORIGIN: {
        if (!f.charge(gas::kBase)) break;
        f.push(tx.origin.to_u256());
        ++f.pc;
        break;
      }
      case Op::CALLER: {
        if (!f.charge(gas::kBase)) break;
        f.push(msg.caller.to_u256());
        ++f.pc;
        break;
      }
      case Op::CALLVALUE: {
        if (!f.charge(gas::kBase)) break;
        f.push(msg.value);
        ++f.pc;
        break;
      }
      case Op::CALLDATALOAD: {
        if (!f.charge(gas::kVeryLow) || !f.require(1)) break;
        f.push(load_word_padded(std::span(msg.data), f.pop()));
        ++f.pc;
        break;
      }
      case Op::CALLDATASIZE: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{msg.data.size()});
        ++f.pc;
        break;
      }
      case Op::CALLDATACOPY: {
        if (!copy_padded(f, std::span(msg.data))) break;
        ++f.pc;
        break;
      }
      case Op::CODESIZE: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.code.size()});
        ++f.pc;
        break;
      }
      case Op::CODECOPY: {
        if (!copy_padded(f, f.code)) break;
        ++f.pc;
        break;
      }
      case Op::GASPRICE: {
        if (!f.charge(gas::kBase)) break;
        f.push(tx.gas_price);
        ++f.pc;
        break;
      }
      case Op::EXTCODESIZE: {
        if (!f.require(1)) break;
        const Address a = Address::from_u256(f.pop());
        if (!f.charge(tx.warm_account(a) ? gas::kWarmAccess
                                         : gas::kColdAccountAccess))
          break;
        const auto ext = buffer.code(a);
        f.push(U256{ext == nullptr ? 0 : ext->size()});
        ++f.pc;
        break;
      }
      case Op::EXTCODEHASH: {
        if (!f.require(1)) break;
        const Address a = Address::from_u256(f.pop());
        if (!f.charge(tx.warm_account(a) ? gas::kWarmAccess
                                         : gas::kColdAccountAccess))
          break;
        // Simplification: code-less addresses hash to zero (we do not track
        // account existence separately from code).
        const auto ext = buffer.code(a);
        if (ext == nullptr || ext->empty()) {
          f.push(U256{});
        } else {
          const crypto::Digest digest = crypto::keccak256(std::span(*ext));
          f.push(U256::from_be_bytes(std::span(digest)));
        }
        ++f.pc;
        break;
      }
      case Op::RETURNDATASIZE: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.return_data.size()});
        ++f.pc;
        break;
      }
      case Op::RETURNDATACOPY: {
        if (!f.require(3)) break;
        const U256 mem_off = f.pop();
        const U256 data_off = f.pop();
        const U256 len = f.pop();
        if (!len.fits64()) {
          f.fail(Status::kOutOfGas);
          break;
        }
        if (!f.charge(gas::kVeryLow + gas::kCopyWord * words_for(len.low64())))
          break;
        // EIP-211: reading past the return-data buffer is an error, not a
        // zero-fill.
        if (!data_off.fits64() ||
            data_off.low64() + len.low64() < data_off.low64() ||
            data_off.low64() + len.low64() > f.return_data.size()) {
          f.fail(Status::kInvalid);
          break;
        }
        if (!f.touch_memory(mem_off, len)) break;
        if (!len.is_zero()) {
          std::memcpy(f.memory.data() + mem_off.low64(),
                      f.return_data.data() + data_off.low64(), len.low64());
        }
        ++f.pc;
        break;
      }

      // -- block context --
      case Op::COINBASE: {
        if (!f.charge(gas::kBase)) break;
        f.push(tx.block->coinbase.to_u256());
        ++f.pc;
        break;
      }
      case Op::TIMESTAMP: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{tx.block->timestamp});
        ++f.pc;
        break;
      }
      case Op::NUMBER: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{tx.block->number});
        ++f.pc;
        break;
      }
      case Op::PREVRANDAO: {
        if (!f.charge(gas::kBase)) break;
        f.push(tx.block->prevrandao);
        ++f.pc;
        break;
      }
      case Op::GASLIMIT: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{tx.block->gas_limit});
        ++f.pc;
        break;
      }
      case Op::CHAINID: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{tx.block->chain_id});
        ++f.pc;
        break;
      }
      case Op::SELFBALANCE: {
        if (!f.charge(gas::kLow)) break;
        f.push(buffer.read(StateKey::balance(msg.to)));
        ++f.pc;
        break;
      }

      // -- stack / memory / storage / flow --
      case Op::POP: {
        if (!f.charge(gas::kBase) || !f.require(1)) break;
        f.pop();
        ++f.pc;
        break;
      }
      case Op::MLOAD: {
        if (!f.charge(gas::kVeryLow) || !f.require(1)) break;
        const U256 off = f.pop();
        if (!f.touch_memory(off, U256{32})) break;
        f.push(U256::from_be_bytes(f.mem_span(off.low64(), 32)));
        ++f.pc;
        break;
      }
      case Op::MSTORE: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 off = f.pop();
        const U256 val = f.pop();
        if (!f.touch_memory(off, U256{32})) break;
        const auto be = val.to_be_bytes();
        std::memcpy(f.memory.data() + off.low64(), be.data(), 32);
        ++f.pc;
        break;
      }
      case Op::MSTORE8: {
        if (!f.charge(gas::kVeryLow) || !f.require(2)) break;
        const U256 off = f.pop();
        const U256 val = f.pop();
        if (!f.touch_memory(off, U256{1})) break;
        f.memory[off.low64()] = static_cast<std::uint8_t>(val.low64() & 0xff);
        ++f.pc;
        break;
      }
      case Op::SLOAD: {
        if (!f.require(1)) break;
        const StateKey key = StateKey::storage(msg.to, f.pop());
        if (!f.charge(tx.warm_slot(key) ? gas::kWarmAccess : gas::kColdSload))
          break;
        f.push(buffer.read(key));
        ++f.pc;
        break;
      }
      case Op::SSTORE: {
        if (msg.is_static) {
          f.fail(Status::kInvalid);  // state mutation in a static frame
          break;
        }
        if (!f.charge(gas::kSstore) || !f.require(2)) break;
        const U256 slot = f.pop();
        const U256 val = f.pop();
        const StateKey key = StateKey::storage(msg.to, slot);
        tx.warm_slot(key);  // a store warms the slot for later SLOADs
        buffer.write(key, val);
        ++f.pc;
        break;
      }
      case Op::JUMP: {
        if (!f.charge(gas::kMid) || !f.require(1)) break;
        const U256 dst = f.pop();
        if (!dst.fits64() || dst.low64() >= f.code.size() ||
            !f.jumpdests[static_cast<std::size_t>(dst.low64())]) {
          f.fail(Status::kInvalid);
          break;
        }
        f.pc = static_cast<std::size_t>(dst.low64());
        break;
      }
      case Op::JUMPI: {
        if (!f.charge(gas::kHigh) || !f.require(2)) break;
        const U256 dst = f.pop();
        const U256 cond = f.pop();
        if (cond.is_zero()) {
          ++f.pc;
          break;
        }
        if (!dst.fits64() || dst.low64() >= f.code.size() ||
            !f.jumpdests[static_cast<std::size_t>(dst.low64())]) {
          f.fail(Status::kInvalid);
          break;
        }
        f.pc = static_cast<std::size_t>(dst.low64());
        break;
      }
      case Op::PC: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.pc});
        ++f.pc;
        break;
      }
      case Op::MSIZE: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.memory.size()});
        ++f.pc;
        break;
      }
      case Op::GAS: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{f.gas_left});
        ++f.pc;
        break;
      }
      case Op::JUMPDEST: {
        if (!f.charge(gas::kJumpdest)) break;
        ++f.pc;
        break;
      }
      case Op::PUSH0: {
        if (!f.charge(gas::kBase)) break;
        f.push(U256{});
        ++f.pc;
        break;
      }

      case Op::CALL:
      case Op::DELEGATECALL:
      case Op::STATICCALL: {
        const Op kind = static_cast<Op>(opcode);
        const bool has_value = (kind == Op::CALL);
        if (!f.require(has_value ? 7 : 6)) break;
        const U256 gas_req = f.pop();
        const Address target = Address::from_u256(f.pop());
        const U256 value = has_value ? f.pop() : U256{};
        const U256 in_off = f.pop();
        const U256 in_len = f.pop();
        const U256 out_off = f.pop();
        const U256 out_len = f.pop();

        // A value-bearing CALL inside a static frame is a state mutation.
        if (msg.is_static && !value.is_zero()) {
          f.fail(Status::kInvalid);
          break;
        }

        const std::uint64_t access_cost = tx.warm_account(target)
                                              ? gas::kWarmAccess
                                              : gas::kColdAccountAccess;
        std::uint64_t extra = access_cost;
        if (!value.is_zero()) extra += gas::kCallValue;
        if (!f.charge(extra)) break;
        if (!f.touch_memory(in_off, in_len)) break;
        if (!f.touch_memory(out_off, out_len)) break;

        // EIP-150 all-but-one-64th forwarding rule.
        const std::uint64_t cap = f.gas_left - f.gas_left / 64;
        std::uint64_t fwd =
            gas_req.fits64() ? std::min(gas_req.low64(), cap) : cap;
        if (!f.charge(fwd)) break;
        if (!value.is_zero()) fwd += gas::kCallStipend;

        // Failure without execution: depth exhausted or insufficient funds.
        const bool too_deep = msg.depth + 1 > kMaxCallDepth;
        const bool broke = !value.is_zero() &&
                           buffer.read(StateKey::balance(msg.to)) < value;
        if (too_deep || broke) {
          f.gas_left += fwd;  // forwarded gas is returned untouched
          f.return_data.clear();
          f.push(U256{0});
          ++f.pc;
          break;
        }

        Message inner;
        if (kind == Op::DELEGATECALL) {
          // The target's code runs in OUR storage context with OUR caller
          // and value; nothing is transferred.
          inner.caller = msg.caller;
          inner.to = msg.to;
          inner.code_address = target;
          inner.value = msg.value;
          inner.transfer_value = false;
        } else {
          inner.caller = msg.to;
          inner.to = target;
          inner.code_address = target;
          inner.value = value;
        }
        inner.is_static = msg.is_static || kind == Op::STATICCALL;
        inner.gas = fwd;
        inner.depth = msg.depth + 1;
        if (!in_len.is_zero()) {
          const auto in = f.mem_span(in_off.low64(), in_len.low64());
          inner.data.assign(in.begin(), in.end());
        }

        const CallResult sub = execute_call(buffer, tx, inner);
        f.gas_left += sub.gas_left;
        if (sub.status == Status::kSuccess) {
          for (const auto& log : sub.logs) result.logs.push_back(log);
        }
        // Return-data buffer: the callee's output on success/revert,
        // cleared on exceptional halts (EIP-211).
        if (sub.status == Status::kSuccess || sub.status == Status::kRevert) {
          f.return_data = sub.output;
        } else {
          f.return_data.clear();
        }
        // Copy return data into the out region (truncated to out_len).
        if (!out_len.is_zero() && !sub.output.empty()) {
          const std::size_t n = std::min<std::size_t>(
              out_len.low64(), sub.output.size());
          std::memcpy(f.memory.data() + out_off.low64(), sub.output.data(),
                      n);
        }
        f.push(U256{sub.status == Status::kSuccess ? 1u : 0u});
        ++f.pc;
        break;
      }

      case Op::RETURN:
      case Op::REVERT: {
        if (!f.require(2)) break;
        const U256 off = f.pop(), len = f.pop();
        if (!f.touch_memory(off, len)) break;
        if (!len.is_zero()) {
          const auto data = f.mem_span(off.low64(), len.low64());
          f.output.assign(data.begin(), data.end());
        }
        if (static_cast<Op>(opcode) == Op::REVERT)
          f.failure = Status::kRevert;
        f.done = true;
        break;
      }

      case Op::INVALID:
      default:
        f.fail(Status::kInvalid);
        break;
    }
  }

  result.status = f.failure;
  // INVALID consumes all frame gas (EVM exceptional halt); REVERT keeps it.
  result.gas_left = (f.failure == Status::kSuccess ||
                     f.failure == Status::kRevert)
                        ? f.gas_left
                        : 0;
  result.output = std::move(f.output);
  if (result.status != Status::kSuccess) result.logs.clear();
  return result;
}

// ===========================================================================
// Fast interpreter — analysis-driven dispatch.
// ===========================================================================

/// Frame state for the fast path.  `checked` selects per-op reference
/// accounting for the current basic block (entry pre-check failed, or a
/// dynamic charge degraded mid-block); while it is false, op bodies skip
/// charge()/require() and stack-overflow checks entirely — the block entry
/// already proved them.
/// Flat operand stack for the fast interpreter.  A plain array + index
/// beats std::vector's per-push capacity branch on the hot path; capacity
/// is guaranteed out of band — the block entry check calls ensure() with
/// the block's pre-analyzed worst-case growth, and checked-mode pushes
/// ensure individually — so push_back() itself can stay branch-free.
/// Starts small (most frames stay shallow) and doubles up to kMaxStack.
struct FastStack {
  static constexpr std::size_t kInitialSlots = 64;
  std::unique_ptr<U256[]> slots = std::make_unique<U256[]>(kInitialSlots);
  std::size_t count = 0;
  std::size_t capacity = kInitialSlots;

  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
  U256& back() { return slots[count - 1]; }
  U256& operator[](std::size_t i) { return slots[i]; }
  const U256& operator[](std::size_t i) const { return slots[i]; }
  void push_back(const U256& v) { slots[count++] = v; }
  void pop_back() { --count; }

  void ensure(std::size_t need) {  // need <= kMaxStack, enforced by callers
    if (need <= capacity) [[likely]]
      return;
    std::size_t grown = capacity;
    while (grown < need) grown *= 2;
    auto bigger = std::make_unique<U256[]>(grown);
    std::copy(slots.get(), slots.get() + count, bigger.get());
    slots = std::move(bigger);
    capacity = grown;
  }
};

struct FastFrame {
  std::span<const std::uint8_t> code;
  const CodeAnalysis* an = nullptr;
  FastStack stack;
  std::vector<std::uint8_t> memory;
  std::uint64_t gas_left = 0;
  std::size_t pc = 0;
  Status failure = Status::kSuccess;
  bool done = false;
  bool checked = false;
  Bytes output;
  Bytes return_data;

  void fail(Status s) {
    failure = s;
    done = true;
  }

  bool charge(std::uint64_t g) {
    if (gas_left < g) {
      fail(Status::kOutOfGas);
      return false;
    }
    gas_left -= g;
    return true;
  }

  /// Dynamic (runtime-sized) charge.  In fast mode a shortfall does not
  /// immediately mean out-of-gas: the block entry pre-charged the static
  /// gas of ops this frame will never reach.  Refund that trailing amount
  /// (the ops strictly after pc in the block), switch the block to checked
  /// accounting, and retry — gas_left then equals the reference's at this
  /// exact point, so the retry's verdict matches the reference's charge.
  bool charge_dyn(std::uint64_t g) {
    if (gas_left >= g) {
      gas_left -= g;
      return true;
    }
    if (!checked) {
      gas_left += an->trailing_gas[pc];
      checked = true;
      if (gas_left >= g) {
        gas_left -= g;
        return true;
      }
    }
    fail(Status::kOutOfGas);
    return false;
  }

  bool push(const U256& v) {
    if (checked) {
      if (stack.size() >= kMaxStack) {
        fail(Status::kInvalid);
        return false;
      }
      stack.ensure(stack.size() + 1);
    }
    stack.push_back(v);
    return true;
  }

  U256 pop() {
    BP_ASSERT(!stack.empty());
    U256 v = stack.back();
    stack.pop_back();
    return v;
  }

  bool require(std::size_t n) {
    if (stack.size() < n) {
      fail(Status::kInvalid);
      return false;
    }
    return true;
  }

  bool touch_memory(const U256& offset, const U256& size) {
    if (size.is_zero()) return true;
    if (!offset.fits64() || !size.fits64()) {
      fail(Status::kOutOfGas);  // unpayable expansion
      return false;
    }
    const std::uint64_t end = offset.low64() + size.low64();
    if (end < offset.low64() || end > (std::uint64_t{1} << 32)) {
      fail(Status::kOutOfGas);
      return false;
    }
    const std::uint64_t old_words = (memory.size() + 31) / 32;
    const std::uint64_t new_words = (end + 31) / 32;
    if (new_words > old_words) {
      const std::uint64_t delta =
          gas::memory_cost(new_words) - gas::memory_cost(old_words);
      if (!charge_dyn(delta)) return false;
      memory.resize(new_words * 32, 0);
    }
    return true;
  }

  std::span<const std::uint8_t> mem_span(std::uint64_t offset,
                                         std::uint64_t size) const {
    BP_ASSERT(offset + size <= memory.size());
    return std::span(memory).subspan(offset, size);
  }
};

/// Everything a handler may touch besides the frame.
struct FastCtx {
  ExecBuffer& buffer;
  TxContext& tx;
  const Message& msg;
  CallResult& result;
};

using OpFn = void (*)(FastFrame&, FastCtx&);

// -- value functions for the templated arithmetic/comparison handlers --
U256 fn_add(const U256& a, const U256& b) { return a + b; }
U256 fn_mul(const U256& a, const U256& b) { return a * b; }
U256 fn_sub(const U256& a, const U256& b) { return a - b; }
U256 fn_div(const U256& a, const U256& b) { return a / b; }
U256 fn_sdiv(const U256& a, const U256& b) { return U256::sdiv(a, b); }
U256 fn_mod(const U256& a, const U256& b) { return a % b; }
U256 fn_smod(const U256& a, const U256& b) { return U256::smod(a, b); }
U256 fn_signextend(const U256& k, const U256& x) {
  return U256::signextend(k, x);
}
U256 fn_lt(const U256& a, const U256& b) { return U256{a < b ? 1u : 0u}; }
U256 fn_gt(const U256& a, const U256& b) { return U256{a > b ? 1u : 0u}; }
U256 fn_slt(const U256& a, const U256& b) {
  return U256{U256::signed_less(a, b) ? 1u : 0u};
}
U256 fn_sgt(const U256& a, const U256& b) {
  return U256{U256::signed_less(b, a) ? 1u : 0u};
}
U256 fn_eq(const U256& a, const U256& b) { return U256{a == b ? 1u : 0u}; }
U256 fn_and(const U256& a, const U256& b) { return a & b; }
U256 fn_or(const U256& a, const U256& b) { return a | b; }
U256 fn_xor(const U256& a, const U256& b) { return a ^ b; }
U256 fn_byte(const U256& i, const U256& x) { return U256::byte(i, x); }
U256 fn_shl(const U256& n, const U256& x) {
  return n.fits64() && n.low64() < 256
             ? x.shl(static_cast<unsigned>(n.low64()))
             : U256{};
}
U256 fn_shr(const U256& n, const U256& x) {
  return n.fits64() && n.low64() < 256
             ? x.shr(static_cast<unsigned>(n.low64()))
             : U256{};
}
U256 fn_sar(const U256& n, const U256& x) {
  const unsigned amount = n.fits64() && n.low64() < 256
                              ? static_cast<unsigned>(n.low64())
                              : 256;
  return x.sar(amount >= 256 ? 255 : amount);  // saturating
}
U256 fn_iszero(const U256& a) { return U256{a.is_zero() ? 1u : 0u}; }
U256 fn_not(const U256& a) { return ~a; }

template <std::uint64_t G, U256 (*Fn)(const U256&, const U256&)>
void op_binary(FastFrame& f, FastCtx&) {
  if (f.checked && (!f.charge(G) || !f.require(2))) return;
  const U256 a = f.pop(), b = f.pop();
  if (!f.push(Fn(a, b))) return;
  ++f.pc;
}

template <std::uint64_t G, U256 (*Fn)(const U256&)>
void op_unary(FastFrame& f, FastCtx&) {
  if (f.checked && (!f.charge(G) || !f.require(1))) return;
  const U256 a = f.pop();
  if (!f.push(Fn(a))) return;
  ++f.pc;
}

template <U256 (*Fn)(const U256&, const U256&, const U256&)>
void op_ternary(FastFrame& f, FastCtx&) {
  if (f.checked && (!f.charge(gas::kMid) || !f.require(3))) return;
  const U256 a = f.pop(), b = f.pop(), m = f.pop();
  if (!f.push(Fn(a, b, m))) return;
  ++f.pc;
}

void op_stop(FastFrame& f, FastCtx&) { f.done = true; }

void op_exp(FastFrame& f, FastCtx&) {
  if (f.checked && !f.require(2)) return;
  const U256 a = f.pop(), e = f.pop();
  const std::uint64_t exp_bytes =
      static_cast<std::uint64_t>((e.bit_length() + 7) / 8);
  if (f.checked) {
    if (!f.charge(gas::kExp + gas::kExpByte * exp_bytes)) return;
  } else if (!f.charge_dyn(gas::kExpByte * exp_bytes)) {
    return;
  }
  if (!f.push(U256::exp(a, e))) return;
  ++f.pc;
}

void op_sha3(FastFrame& f, FastCtx&) {
  if (f.checked && !f.require(2)) return;
  const U256 off = f.pop(), len = f.pop();
  if (!len.fits64()) {
    f.fail(Status::kOutOfGas);
    return;
  }
  if (f.checked) {
    if (!f.charge(gas::kSha3 + gas::kSha3Word * words_for(len.low64())))
      return;
  } else if (!f.charge_dyn(gas::kSha3Word * words_for(len.low64()))) {
    return;
  }
  if (!f.touch_memory(off, len)) return;
  const auto data = len.is_zero() ? std::span<const std::uint8_t>{}
                                  : f.mem_span(off.low64(), len.low64());
  const crypto::Digest digest = crypto::keccak256(data);
  if (!f.push(U256::from_be_bytes(std::span(digest)))) return;
  ++f.pc;
}

/// Context-free value pushes (ADDRESS, ORIGIN, block fields, ...) share
/// this shape; V computes the value from the frame + context.
template <std::uint64_t G, U256 (*V)(FastFrame&, FastCtx&)>
void op_push_value(FastFrame& f, FastCtx& c) {
  if (f.checked && !f.charge(G)) return;
  if (!f.push(V(f, c))) return;
  ++f.pc;
}

U256 v_address(FastFrame&, FastCtx& c) { return c.msg.to.to_u256(); }
U256 v_origin(FastFrame&, FastCtx& c) { return c.tx.origin.to_u256(); }
U256 v_caller(FastFrame&, FastCtx& c) { return c.msg.caller.to_u256(); }
U256 v_callvalue(FastFrame&, FastCtx& c) { return c.msg.value; }
U256 v_calldatasize(FastFrame&, FastCtx& c) {
  return U256{c.msg.data.size()};
}
U256 v_codesize(FastFrame& f, FastCtx&) { return U256{f.code.size()}; }
U256 v_gasprice(FastFrame&, FastCtx& c) { return c.tx.gas_price; }
U256 v_returndatasize(FastFrame& f, FastCtx&) {
  return U256{f.return_data.size()};
}
U256 v_coinbase(FastFrame&, FastCtx& c) {
  return c.tx.block->coinbase.to_u256();
}
U256 v_timestamp(FastFrame&, FastCtx& c) {
  return U256{c.tx.block->timestamp};
}
U256 v_number(FastFrame&, FastCtx& c) { return U256{c.tx.block->number}; }
U256 v_prevrandao(FastFrame&, FastCtx& c) { return c.tx.block->prevrandao; }
U256 v_gaslimit(FastFrame&, FastCtx& c) {
  return U256{c.tx.block->gas_limit};
}
U256 v_chainid(FastFrame&, FastCtx& c) { return U256{c.tx.block->chain_id}; }
U256 v_selfbalance(FastFrame&, FastCtx& c) {
  return c.buffer.read(StateKey::balance(c.msg.to));
}
U256 v_pc(FastFrame& f, FastCtx&) { return U256{f.pc}; }
U256 v_msize(FastFrame& f, FastCtx&) { return U256{f.memory.size()}; }
U256 v_gas(FastFrame& f, FastCtx&) { return U256{f.gas_left}; }
U256 v_zero(FastFrame&, FastCtx&) { return U256{}; }

void op_balance(FastFrame& f, FastCtx& c) {
  if (f.checked && !f.require(1)) return;
  const Address a = Address::from_u256(f.pop());
  if (!f.charge_dyn(c.tx.warm_account(a) ? gas::kWarmAccess
                                         : gas::kColdAccountAccess))
    return;
  if (!f.push(c.buffer.read(StateKey::balance(a)))) return;
  ++f.pc;
}

void op_extcodesize(FastFrame& f, FastCtx& c) {
  if (f.checked && !f.require(1)) return;
  const Address a = Address::from_u256(f.pop());
  if (!f.charge_dyn(c.tx.warm_account(a) ? gas::kWarmAccess
                                         : gas::kColdAccountAccess))
    return;
  const auto ext = c.buffer.code(a);
  if (!f.push(U256{ext == nullptr ? 0 : ext->size()})) return;
  ++f.pc;
}

void op_extcodehash(FastFrame& f, FastCtx& c) {
  if (f.checked && !f.require(1)) return;
  const Address a = Address::from_u256(f.pop());
  if (!f.charge_dyn(c.tx.warm_account(a) ? gas::kWarmAccess
                                         : gas::kColdAccountAccess))
    return;
  // The stored hash is keccak(code), zero for code-less/empty accounts —
  // exactly the reference's recompute-per-op semantics, minus the keccak.
  const Hash256 h = c.buffer.code_hash(a);
  if (!f.push(h.is_zero() ? U256{} : h.to_u256())) return;
  ++f.pc;
}

void op_calldataload(FastFrame& f, FastCtx& c) {
  if (f.checked && (!f.charge(gas::kVeryLow) || !f.require(1))) return;
  if (!f.push(load_word_padded(std::span(c.msg.data), f.pop()))) return;
  ++f.pc;
}

/// CALLDATACOPY / CODECOPY body (reference copy_padded, fast accounting).
bool copy_padded_fast(FastFrame& f, std::span<const std::uint8_t> src) {
  if (f.checked && !f.require(3)) return false;
  const U256 mem_off = f.pop();
  const U256 src_off = f.pop();
  const U256 len = f.pop();
  if (!len.fits64()) {
    f.fail(Status::kOutOfGas);
    return false;
  }
  if (f.checked) {
    if (!f.charge(gas::kVeryLow + gas::kCopyWord * words_for(len.low64())))
      return false;
  } else if (!f.charge_dyn(gas::kCopyWord * words_for(len.low64()))) {
    return false;
  }
  if (!f.touch_memory(mem_off, len)) return false;
  if (len.is_zero()) return true;
  const std::uint64_t dst = mem_off.low64();
  for (std::uint64_t i = 0; i < len.low64(); ++i) {
    std::uint8_t b = 0;
    if (src_off.fits64()) {
      const std::uint64_t s = src_off.low64() + i;
      if (s >= src_off.low64() && s < src.size()) b = src[s];
    }
    f.memory[dst + i] = b;
  }
  return true;
}

void op_calldatacopy(FastFrame& f, FastCtx& c) {
  if (!copy_padded_fast(f, std::span(c.msg.data))) return;
  ++f.pc;
}

void op_codecopy(FastFrame& f, FastCtx&) {
  if (!copy_padded_fast(f, f.code)) return;
  ++f.pc;
}

void op_returndatacopy(FastFrame& f, FastCtx&) {
  if (f.checked && !f.require(3)) return;
  const U256 mem_off = f.pop();
  const U256 data_off = f.pop();
  const U256 len = f.pop();
  if (!len.fits64()) {
    f.fail(Status::kOutOfGas);
    return;
  }
  if (f.checked) {
    if (!f.charge(gas::kVeryLow + gas::kCopyWord * words_for(len.low64())))
      return;
  } else if (!f.charge_dyn(gas::kCopyWord * words_for(len.low64()))) {
    return;
  }
  // EIP-211: reading past the return-data buffer is an error, not a
  // zero-fill.  (Checked after the charge, like the reference.)
  if (!data_off.fits64() ||
      data_off.low64() + len.low64() < data_off.low64() ||
      data_off.low64() + len.low64() > f.return_data.size()) {
    f.fail(Status::kInvalid);
    return;
  }
  if (!f.touch_memory(mem_off, len)) return;
  if (!len.is_zero()) {
    std::memcpy(f.memory.data() + mem_off.low64(),
                f.return_data.data() + data_off.low64(), len.low64());
  }
  ++f.pc;
}

void op_pop(FastFrame& f, FastCtx&) {
  if (f.checked && (!f.charge(gas::kBase) || !f.require(1))) return;
  f.pop();
  ++f.pc;
}

void op_mload(FastFrame& f, FastCtx&) {
  if (f.checked && (!f.charge(gas::kVeryLow) || !f.require(1))) return;
  const U256 off = f.pop();
  if (!f.touch_memory(off, U256{32})) return;
  if (!f.push(U256::from_be_bytes(f.mem_span(off.low64(), 32)))) return;
  ++f.pc;
}

void op_mstore(FastFrame& f, FastCtx&) {
  if (f.checked && (!f.charge(gas::kVeryLow) || !f.require(2))) return;
  const U256 off = f.pop();
  const U256 val = f.pop();
  if (!f.touch_memory(off, U256{32})) return;
  const auto be = val.to_be_bytes();
  std::memcpy(f.memory.data() + off.low64(), be.data(), 32);
  ++f.pc;
}

void op_mstore8(FastFrame& f, FastCtx&) {
  if (f.checked && (!f.charge(gas::kVeryLow) || !f.require(2))) return;
  const U256 off = f.pop();
  const U256 val = f.pop();
  if (!f.touch_memory(off, U256{1})) return;
  f.memory[off.low64()] = static_cast<std::uint8_t>(val.low64() & 0xff);
  ++f.pc;
}

void op_sload(FastFrame& f, FastCtx& c) {
  if (f.checked && !f.require(1)) return;
  const StateKey key = StateKey::storage(c.msg.to, f.pop());
  if (!f.charge_dyn(c.tx.warm_slot(key) ? gas::kWarmAccess
                                        : gas::kColdSload))
    return;
  if (!f.push(c.buffer.read(key))) return;
  ++f.pc;
}

void op_sstore(FastFrame& f, FastCtx& c) {
  if (c.msg.is_static) {
    f.fail(Status::kInvalid);  // state mutation in a static frame
    return;
  }
  if (f.checked && (!f.charge(gas::kSstore) || !f.require(2))) return;
  const U256 slot = f.pop();
  const U256 val = f.pop();
  const StateKey key = StateKey::storage(c.msg.to, slot);
  c.tx.warm_slot(key);  // a store warms the slot for later SLOADs
  c.buffer.write(key, val);
  ++f.pc;
}

void op_jump(FastFrame& f, FastCtx&) {
  if (f.checked && (!f.charge(gas::kMid) || !f.require(1))) return;
  const U256 dst = f.pop();
  if (!dst.fits64() || !f.an->is_jumpdest(dst.low64())) {
    f.fail(Status::kInvalid);
    return;
  }
  f.pc = static_cast<std::size_t>(dst.low64());
}

void op_jumpi(FastFrame& f, FastCtx&) {
  if (f.checked && (!f.charge(gas::kHigh) || !f.require(2))) return;
  const U256 dst = f.pop();
  const U256 cond = f.pop();
  if (cond.is_zero()) {
    ++f.pc;
    return;
  }
  if (!dst.fits64() || !f.an->is_jumpdest(dst.low64())) {
    f.fail(Status::kInvalid);
    return;
  }
  f.pc = static_cast<std::size_t>(dst.low64());
}

void op_jumpdest(FastFrame& f, FastCtx&) {
  if (f.checked && !f.charge(gas::kJumpdest)) return;
  ++f.pc;
}

void op_push(FastFrame& f, FastCtx&) {
  if (f.checked && !f.charge(gas::kVeryLow)) return;
  if (!f.push(f.an->immediates[f.an->imm_index[f.pc]])) return;
  f.pc += 1 + static_cast<std::size_t>(f.code[f.pc] - 0x60 + 1);
}

void op_dup(FastFrame& f, FastCtx&) {
  const std::size_t n = static_cast<std::size_t>(f.code[f.pc] - 0x80 + 1);
  if (f.checked && (!f.charge(gas::kVeryLow) || !f.require(n))) return;
  if (!f.push(f.stack[f.stack.size() - n])) return;
  ++f.pc;
}

void op_swap(FastFrame& f, FastCtx&) {
  const std::size_t n = static_cast<std::size_t>(f.code[f.pc] - 0x90 + 1);
  if (f.checked && (!f.charge(gas::kVeryLow) || !f.require(n + 1))) return;
  std::swap(f.stack.back(), f.stack[f.stack.size() - 1 - n]);
  ++f.pc;
}

void op_log(FastFrame& f, FastCtx& c) {
  if (c.msg.is_static) {
    f.fail(Status::kInvalid);  // logging mutates the receipt trie
    return;
  }
  const std::size_t topics = static_cast<std::size_t>(f.code[f.pc] - 0xa0);
  if (f.checked && !f.require(2 + topics)) return;
  const U256 off = f.pop();
  const U256 len = f.pop();
  if (!len.fits64()) {
    f.fail(Status::kOutOfGas);
    return;
  }
  if (f.checked) {
    if (!f.charge(gas::kLog + gas::kLogTopic * topics +
                  gas::kLogData * len.low64()))
      return;
  } else if (!f.charge_dyn(gas::kLogData * len.low64())) {
    return;
  }
  if (!f.touch_memory(off, len)) return;
  LogRecord log;
  log.address = c.msg.to;
  for (std::size_t i = 0; i < topics; ++i) log.topics.push_back(f.pop());
  if (!len.is_zero()) {
    const auto data = f.mem_span(off.low64(), len.low64());
    log.data.assign(data.begin(), data.end());
  }
  c.result.logs.push_back(std::move(log));
  ++f.pc;
}

void op_call(FastFrame& f, FastCtx& c) {
  // CALL-family ops are block terminators, so at this point fast-mode
  // gas_left equals the reference's exactly (their own static gas is zero
  // and nothing trails them); plain charge() is reference-identical.
  const Op kind = static_cast<Op>(f.code[f.pc]);
  const bool has_value = (kind == Op::CALL);
  if (f.checked && !f.require(has_value ? 7 : 6)) return;
  const U256 gas_req = f.pop();
  const Address target = Address::from_u256(f.pop());
  const U256 value = has_value ? f.pop() : U256{};
  const U256 in_off = f.pop();
  const U256 in_len = f.pop();
  const U256 out_off = f.pop();
  const U256 out_len = f.pop();

  // A value-bearing CALL inside a static frame is a state mutation.
  if (c.msg.is_static && !value.is_zero()) {
    f.fail(Status::kInvalid);
    return;
  }

  const std::uint64_t access_cost = c.tx.warm_account(target)
                                        ? gas::kWarmAccess
                                        : gas::kColdAccountAccess;
  std::uint64_t extra = access_cost;
  if (!value.is_zero()) extra += gas::kCallValue;
  if (!f.charge(extra)) return;
  if (!f.touch_memory(in_off, in_len)) return;
  if (!f.touch_memory(out_off, out_len)) return;

  // EIP-150 all-but-one-64th forwarding rule.
  const std::uint64_t cap = f.gas_left - f.gas_left / 64;
  std::uint64_t fwd = gas_req.fits64() ? std::min(gas_req.low64(), cap) : cap;
  if (!f.charge(fwd)) return;
  if (!value.is_zero()) fwd += gas::kCallStipend;

  // Failure without execution: depth exhausted or insufficient funds.
  const bool too_deep = c.msg.depth + 1 > kMaxCallDepth;
  const bool broke = !value.is_zero() &&
                     c.buffer.read(StateKey::balance(c.msg.to)) < value;
  if (too_deep || broke) {
    f.gas_left += fwd;  // forwarded gas is returned untouched
    f.return_data.clear();
    if (!f.push(U256{0})) return;
    ++f.pc;
    return;
  }

  Message inner;
  if (kind == Op::DELEGATECALL) {
    // The target's code runs in OUR storage context with OUR caller
    // and value; nothing is transferred.
    inner.caller = c.msg.caller;
    inner.to = c.msg.to;
    inner.code_address = target;
    inner.value = c.msg.value;
    inner.transfer_value = false;
  } else {
    inner.caller = c.msg.to;
    inner.to = target;
    inner.code_address = target;
    inner.value = value;
  }
  inner.is_static = c.msg.is_static || kind == Op::STATICCALL;
  inner.gas = fwd;
  inner.depth = c.msg.depth + 1;
  if (!in_len.is_zero()) {
    const auto in = f.mem_span(in_off.low64(), in_len.low64());
    inner.data.assign(in.begin(), in.end());
  }

  const CallResult sub = execute_call(c.buffer, c.tx, inner);
  f.gas_left += sub.gas_left;
  if (sub.status == Status::kSuccess) {
    for (const auto& log : sub.logs) c.result.logs.push_back(log);
  }
  // Return-data buffer: the callee's output on success/revert, cleared on
  // exceptional halts (EIP-211).
  if (sub.status == Status::kSuccess || sub.status == Status::kRevert) {
    f.return_data = sub.output;
  } else {
    f.return_data.clear();
  }
  // Copy return data into the out region (truncated to out_len).
  if (!out_len.is_zero() && !sub.output.empty()) {
    const std::size_t n =
        std::min<std::size_t>(out_len.low64(), sub.output.size());
    std::memcpy(f.memory.data() + out_off.low64(), sub.output.data(), n);
  }
  if (!f.push(U256{sub.status == Status::kSuccess ? 1u : 0u})) return;
  ++f.pc;
}

void op_return(FastFrame& f, FastCtx&) {
  if (f.checked && !f.require(2)) return;
  const U256 off = f.pop(), len = f.pop();
  if (!f.touch_memory(off, len)) return;
  if (!len.is_zero()) {
    const auto data = f.mem_span(off.low64(), len.low64());
    f.output.assign(data.begin(), data.end());
  }
  if (static_cast<Op>(f.code[f.pc]) == Op::REVERT)
    f.failure = Status::kRevert;
  f.done = true;
}

void op_invalid(FastFrame& f, FastCtx&) { f.fail(Status::kInvalid); }

std::array<OpFn, 256> make_dispatch_table() {
  std::array<OpFn, 256> t;
  t.fill(&op_invalid);
  t[0x00] = &op_stop;
  t[0x01] = &op_binary<gas::kVeryLow, fn_add>;
  t[0x02] = &op_binary<gas::kLow, fn_mul>;
  t[0x03] = &op_binary<gas::kVeryLow, fn_sub>;
  t[0x04] = &op_binary<gas::kLow, fn_div>;
  t[0x05] = &op_binary<gas::kLow, fn_sdiv>;
  t[0x06] = &op_binary<gas::kLow, fn_mod>;
  t[0x07] = &op_binary<gas::kLow, fn_smod>;
  t[0x08] = &op_ternary<U256::addmod>;
  t[0x09] = &op_ternary<U256::mulmod>;
  t[0x0a] = &op_exp;
  t[0x0b] = &op_binary<gas::kLow, fn_signextend>;
  t[0x10] = &op_binary<gas::kVeryLow, fn_lt>;
  t[0x11] = &op_binary<gas::kVeryLow, fn_gt>;
  t[0x12] = &op_binary<gas::kVeryLow, fn_slt>;
  t[0x13] = &op_binary<gas::kVeryLow, fn_sgt>;
  t[0x14] = &op_binary<gas::kVeryLow, fn_eq>;
  t[0x15] = &op_unary<gas::kVeryLow, fn_iszero>;
  t[0x16] = &op_binary<gas::kVeryLow, fn_and>;
  t[0x17] = &op_binary<gas::kVeryLow, fn_or>;
  t[0x18] = &op_binary<gas::kVeryLow, fn_xor>;
  t[0x19] = &op_unary<gas::kVeryLow, fn_not>;
  t[0x1a] = &op_binary<gas::kVeryLow, fn_byte>;
  t[0x1b] = &op_binary<gas::kVeryLow, fn_shl>;
  t[0x1c] = &op_binary<gas::kVeryLow, fn_shr>;
  t[0x1d] = &op_binary<gas::kVeryLow, fn_sar>;
  t[0x20] = &op_sha3;
  t[0x30] = &op_push_value<gas::kBase, v_address>;
  t[0x31] = &op_balance;
  t[0x32] = &op_push_value<gas::kBase, v_origin>;
  t[0x33] = &op_push_value<gas::kBase, v_caller>;
  t[0x34] = &op_push_value<gas::kBase, v_callvalue>;
  t[0x35] = &op_calldataload;
  t[0x36] = &op_push_value<gas::kBase, v_calldatasize>;
  t[0x37] = &op_calldatacopy;
  t[0x38] = &op_push_value<gas::kBase, v_codesize>;
  t[0x39] = &op_codecopy;
  t[0x3a] = &op_push_value<gas::kBase, v_gasprice>;
  t[0x3b] = &op_extcodesize;
  t[0x3d] = &op_push_value<gas::kBase, v_returndatasize>;
  t[0x3e] = &op_returndatacopy;
  t[0x3f] = &op_extcodehash;
  t[0x41] = &op_push_value<gas::kBase, v_coinbase>;
  t[0x42] = &op_push_value<gas::kBase, v_timestamp>;
  t[0x43] = &op_push_value<gas::kBase, v_number>;
  t[0x44] = &op_push_value<gas::kBase, v_prevrandao>;
  t[0x45] = &op_push_value<gas::kBase, v_gaslimit>;
  t[0x46] = &op_push_value<gas::kBase, v_chainid>;
  t[0x47] = &op_push_value<gas::kLow, v_selfbalance>;
  t[0x50] = &op_pop;
  t[0x51] = &op_mload;
  t[0x52] = &op_mstore;
  t[0x53] = &op_mstore8;
  t[0x54] = &op_sload;
  t[0x55] = &op_sstore;
  t[0x56] = &op_jump;
  t[0x57] = &op_jumpi;
  t[0x58] = &op_push_value<gas::kBase, v_pc>;
  t[0x59] = &op_push_value<gas::kBase, v_msize>;
  t[0x5a] = &op_push_value<gas::kBase, v_gas>;
  t[0x5b] = &op_jumpdest;
  t[0x5f] = &op_push_value<gas::kBase, v_zero>;  // PUSH0
  for (unsigned op = 0x60; op <= 0x7f; ++op) t[op] = &op_push;
  for (unsigned op = 0x80; op <= 0x8f; ++op) t[op] = &op_dup;
  for (unsigned op = 0x90; op <= 0x9f; ++op) t[op] = &op_swap;
  for (unsigned op = 0xa0; op <= 0xa4; ++op) t[op] = &op_log;
  t[0xf1] = &op_call;
  t[0xf3] = &op_return;
  t[0xf4] = &op_call;
  t[0xfa] = &op_call;
  t[0xfd] = &op_return;  // REVERT (distinguished by opcode inside)
  t[0xfe] = &op_invalid;
  return t;
}

const std::array<OpFn, 256> kDispatch = make_dispatch_table();

CallResult run_interpreter_fast(ExecBuffer& buffer, TxContext& tx,
                                const Message& msg,
                                std::span<const std::uint8_t> code,
                                const CodeAnalysis& an) {
  FastFrame f;
  f.code = code;
  f.an = &an;
  f.gas_left = msg.gas;

  CallResult result;
  FastCtx ctx{buffer, tx, msg, result};

  while (!f.done) {
    if (f.pc >= code.size()) break;  // implicit STOP
    // Control flow can only land on a block-entry pc by entering the
    // block, so this probe fires exactly once per block execution.
    const std::uint32_t blk = an.block_at[f.pc];
    if (blk != 0) {
      const CodeAnalysis::Block& b = an.blocks[blk - 1];
      if (f.gas_left >= b.static_gas && f.stack.size() >= b.stack_required &&
          f.stack.size() + b.stack_max_growth <= kMaxStack) {
        f.gas_left -= b.static_gas;
        // One capacity reservation covers every push in the block, so the
        // unchecked push_back stays branch-free.
        f.stack.ensure(f.stack.size() + b.stack_max_growth);
        f.checked = false;
      } else {
        // The block cannot complete; replay it with the reference's
        // per-op accounting so it fails at the exact reference point.
        f.checked = true;
      }
    }
    const std::uint8_t op = code[f.pc];
    // Hot ops dispatch through direct calls the optimizer can inline —
    // an indirect call per op forces every frame field through memory,
    // which is what made the table-only loop lose to the reference
    // switch.  Cold ops (storage, env, calls, logs, copies) fall through
    // to the table; both paths run the SAME handler functions, so the
    // split cannot change semantics.
    switch (op) {
      case 0x01: op_binary<gas::kVeryLow, fn_add>(f, ctx); break;
      case 0x02: op_binary<gas::kLow, fn_mul>(f, ctx); break;
      case 0x03: op_binary<gas::kVeryLow, fn_sub>(f, ctx); break;
      case 0x04: op_binary<gas::kLow, fn_div>(f, ctx); break;
      case 0x05: op_binary<gas::kLow, fn_sdiv>(f, ctx); break;
      case 0x06: op_binary<gas::kLow, fn_mod>(f, ctx); break;
      case 0x07: op_binary<gas::kLow, fn_smod>(f, ctx); break;
      case 0x08: op_ternary<U256::addmod>(f, ctx); break;
      case 0x09: op_ternary<U256::mulmod>(f, ctx); break;
      case 0x0a: op_exp(f, ctx); break;
      case 0x0b: op_binary<gas::kLow, fn_signextend>(f, ctx); break;
      case 0x10: op_binary<gas::kVeryLow, fn_lt>(f, ctx); break;
      case 0x11: op_binary<gas::kVeryLow, fn_gt>(f, ctx); break;
      case 0x12: op_binary<gas::kVeryLow, fn_slt>(f, ctx); break;
      case 0x13: op_binary<gas::kVeryLow, fn_sgt>(f, ctx); break;
      case 0x14: op_binary<gas::kVeryLow, fn_eq>(f, ctx); break;
      case 0x15: op_unary<gas::kVeryLow, fn_iszero>(f, ctx); break;
      case 0x16: op_binary<gas::kVeryLow, fn_and>(f, ctx); break;
      case 0x17: op_binary<gas::kVeryLow, fn_or>(f, ctx); break;
      case 0x18: op_binary<gas::kVeryLow, fn_xor>(f, ctx); break;
      case 0x19: op_unary<gas::kVeryLow, fn_not>(f, ctx); break;
      case 0x1a: op_binary<gas::kVeryLow, fn_byte>(f, ctx); break;
      case 0x1b: op_binary<gas::kVeryLow, fn_shl>(f, ctx); break;
      case 0x1c: op_binary<gas::kVeryLow, fn_shr>(f, ctx); break;
      case 0x1d: op_binary<gas::kVeryLow, fn_sar>(f, ctx); break;
      case 0x20: op_sha3(f, ctx); break;
      case 0x35: op_calldataload(f, ctx); break;
      case 0x50: op_pop(f, ctx); break;
      case 0x51: op_mload(f, ctx); break;
      case 0x52: op_mstore(f, ctx); break;
      case 0x53: op_mstore8(f, ctx); break;
      case 0x56: op_jump(f, ctx); break;
      case 0x57: op_jumpi(f, ctx); break;
      case 0x5b: op_jumpdest(f, ctx); break;
      // PUSH1..PUSH32
      case 0x60: case 0x61: case 0x62: case 0x63:
      case 0x64: case 0x65: case 0x66: case 0x67:
      case 0x68: case 0x69: case 0x6a: case 0x6b:
      case 0x6c: case 0x6d: case 0x6e: case 0x6f:
      case 0x70: case 0x71: case 0x72: case 0x73:
      case 0x74: case 0x75: case 0x76: case 0x77:
      case 0x78: case 0x79: case 0x7a: case 0x7b:
      case 0x7c: case 0x7d: case 0x7e: case 0x7f:
        op_push(f, ctx);
        break;
      // DUP1..DUP16
      case 0x80: case 0x81: case 0x82: case 0x83:
      case 0x84: case 0x85: case 0x86: case 0x87:
      case 0x88: case 0x89: case 0x8a: case 0x8b:
      case 0x8c: case 0x8d: case 0x8e: case 0x8f:
        op_dup(f, ctx);
        break;
      // SWAP1..SWAP16
      case 0x90: case 0x91: case 0x92: case 0x93:
      case 0x94: case 0x95: case 0x96: case 0x97:
      case 0x98: case 0x99: case 0x9a: case 0x9b:
      case 0x9c: case 0x9d: case 0x9e: case 0x9f:
        op_swap(f, ctx);
        break;
      default:
        kDispatch[op](f, ctx);
        break;
    }
  }

  result.status = f.failure;
  // INVALID consumes all frame gas (EVM exceptional halt); REVERT keeps it.
  result.gas_left =
      (f.failure == Status::kSuccess || f.failure == Status::kRevert)
          ? f.gas_left
          : 0;
  result.output = std::move(f.output);
  if (result.status != Status::kSuccess) result.logs.clear();
  return result;
}

}  // namespace

std::string_view op_name(std::uint8_t opcode) noexcept {
  switch (opcode) {
#define BP_OPCODE_NAME(ID, VALUE, NAME, GAS, REQ, NET, FLAGS) \
  case VALUE:                                                 \
    return NAME;
    BP_OPCODE_TABLE(BP_OPCODE_NAME)
#undef BP_OPCODE_NAME
    default:
      break;
  }
  if (opcode >= 0x60 && opcode <= 0x7f) return "PUSH";
  if (opcode >= 0x80 && opcode <= 0x8f) return "DUP";
  if (opcode >= 0x90 && opcode <= 0x9f) return "SWAP";
  return "UNKNOWN";
}

CallResult execute_call(state::ExecBuffer& buffer, TxContext& tx,
                        const Message& msg) {
  const std::size_t checkpoint = buffer.checkpoint();
  tx.warm_account(msg.to);

  if (msg.transfer_value && !msg.value.is_zero()) {
    transfer(buffer, msg.caller, msg.to, msg.value);
  }

  // DELEGATECALL runs foreign code in this frame's storage context.
  const Address code_addr =
      msg.code_address.is_zero() ? msg.to : msg.code_address;
  const auto code = buffer.code(code_addr);
  CallResult result;
  if (code == nullptr || code->empty()) {
    result.status = Status::kSuccess;
    result.gas_left = msg.gas;
    return result;
  }

  if (tx.use_reference_interpreter) {
    result = run_interpreter_reference(buffer, tx, msg, std::span(*code));
  } else {
    // One analysis per code hash per process: every frame of every
    // transaction on every executor shares the cached copy.
    CodeAnalysisCache& cache =
        tx.analysis_cache ? *tx.analysis_cache : CodeAnalysisCache::global();
    const auto analysis =
        cache.get(buffer.code_hash(code_addr), std::span(*code));
    result = run_interpreter_fast(buffer, tx, msg, std::span(*code),
                                  *analysis);
  }
  if (result.status != Status::kSuccess) buffer.revert_to(checkpoint);
  return result;
}

}  // namespace blockpilot::evm
