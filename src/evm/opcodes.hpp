// EVM opcode set supported by the interpreter.
//
// Numeric values match the canonical EVM instruction encoding so that
// bytecode written for this interpreter is shaped like real contract code
// (the paper's conflict analysis hinges on SLOAD/SSTORE gas dominance,
// §4.3), and disassembly output is recognizable.
#pragma once

#include <cstdint>
#include <string_view>

namespace blockpilot::evm {

enum class Op : std::uint8_t {
  STOP = 0x00,
  ADD = 0x01,
  MUL = 0x02,
  SUB = 0x03,
  DIV = 0x04,
  SDIV = 0x05,
  MOD = 0x06,
  SMOD = 0x07,
  ADDMOD = 0x08,
  MULMOD = 0x09,
  EXP = 0x0a,
  SIGNEXTEND = 0x0b,

  LT = 0x10,
  GT = 0x11,
  SLT = 0x12,
  SGT = 0x13,
  EQ = 0x14,
  ISZERO = 0x15,
  AND = 0x16,
  OR = 0x17,
  XOR = 0x18,
  NOT = 0x19,
  BYTE = 0x1a,
  SHL = 0x1b,
  SHR = 0x1c,
  SAR = 0x1d,

  SHA3 = 0x20,

  ADDRESS = 0x30,
  BALANCE = 0x31,
  ORIGIN = 0x32,
  CALLER = 0x33,
  CALLVALUE = 0x34,
  CALLDATALOAD = 0x35,
  CALLDATASIZE = 0x36,
  CALLDATACOPY = 0x37,
  CODESIZE = 0x38,
  CODECOPY = 0x39,
  GASPRICE = 0x3a,
  EXTCODESIZE = 0x3b,
  RETURNDATASIZE = 0x3d,
  RETURNDATACOPY = 0x3e,
  EXTCODEHASH = 0x3f,

  COINBASE = 0x41,
  TIMESTAMP = 0x42,
  NUMBER = 0x43,
  PREVRANDAO = 0x44,
  GASLIMIT = 0x45,
  CHAINID = 0x46,
  SELFBALANCE = 0x47,

  POP = 0x50,
  MLOAD = 0x51,
  MSTORE = 0x52,
  MSTORE8 = 0x53,
  SLOAD = 0x54,
  SSTORE = 0x55,
  JUMP = 0x56,
  JUMPI = 0x57,
  PC = 0x58,
  MSIZE = 0x59,
  GAS = 0x5a,
  JUMPDEST = 0x5b,

  PUSH0 = 0x5f,
  PUSH1 = 0x60,
  // PUSH2..PUSH32 are 0x61..0x7f
  PUSH32 = 0x7f,
  DUP1 = 0x80,
  DUP2 = 0x81,
  DUP3 = 0x82,
  DUP4 = 0x83,
  DUP5 = 0x84,
  DUP6 = 0x85,
  DUP7 = 0x86,
  DUP8 = 0x87,
  DUP16 = 0x8f,
  SWAP1 = 0x90,
  SWAP2 = 0x91,
  SWAP3 = 0x92,
  SWAP4 = 0x93,
  SWAP5 = 0x94,
  SWAP6 = 0x95,
  SWAP7 = 0x96,
  SWAP8 = 0x97,
  SWAP16 = 0x9f,

  LOG0 = 0xa0,
  LOG1 = 0xa1,
  LOG2 = 0xa2,
  LOG3 = 0xa3,
  LOG4 = 0xa4,

  CALL = 0xf1,
  RETURN = 0xf3,
  DELEGATECALL = 0xf4,
  STATICCALL = 0xfa,
  REVERT = 0xfd,
  INVALID = 0xfe,
};

/// Mnemonic for diagnostics and the disassembler; "UNKNOWN" for gaps.
std::string_view op_name(std::uint8_t opcode) noexcept;

/// True iff the opcode is PUSH1..PUSH32; `n` receives the immediate size.
constexpr bool is_push(std::uint8_t opcode, std::size_t& n) noexcept {
  if (opcode >= 0x60 && opcode <= 0x7f) {
    n = static_cast<std::size_t>(opcode - 0x60 + 1);
    return true;
  }
  return false;
}

}  // namespace blockpilot::evm
