// EVM opcode set supported by the interpreter.
//
// Numeric values match the canonical EVM instruction encoding so that
// bytecode written for this interpreter is shaped like real contract code
// (the paper's conflict analysis hinges on SLOAD/SSTORE gas dominance,
// §4.3), and disassembly output is recognizable.
//
// The single source of truth is BP_OPCODE_TABLE below: the Op enum,
// op_name(), and the per-op static traits (static gas, stack arity, basic
// -block terminators) that drive both the interpreter dispatch and the
// CodeAnalysis pre-pass are all generated from it, so a new opcode cannot
// drift between the dispatch switch and the mnemonic table.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "evm/gas.hpp"

namespace blockpilot::evm {

/// Basic-block terminator: control flow never falls through this opcode
/// into the next instruction without a block-entry check (JUMP/JUMPI,
/// frame-ending ops, and the gas-observing ops GAS and the CALL family,
/// which must see an exact per-op gas_left — see code_analysis.hpp).
inline constexpr std::uint8_t kOpFlagTerminator = 0x01;

// X(ID, VALUE, NAME, STATIC_GAS, STACK_REQ, STACK_NET, FLAGS)
//
//  STATIC_GAS — the statically-known portion of the op's FIRST gas charge
//    (the part the analysis pre-sums per basic block).  Ops whose first
//    charge depends on runtime state (warm/cold access, forwarded gas)
//    carry 0 and charge dynamically.
//  STACK_REQ  — operands required on the stack.
//  STACK_NET  — stack-height delta (pushes minus pops).
//
// PUSH2..PUSH31, DUP9..DUP15 and SWAP9..SWAP15 are valid encodings without
// enum names; make_op_traits() range-fills their traits and op_name()
// range-matches their mnemonics, exactly like the named range members.
#define BP_OPCODE_TABLE(X)                                                 \
  X(STOP, 0x00, "STOP", 0, 0, 0, kOpFlagTerminator)                        \
  X(ADD, 0x01, "ADD", gas::kVeryLow, 2, -1, 0)                             \
  X(MUL, 0x02, "MUL", gas::kLow, 2, -1, 0)                                 \
  X(SUB, 0x03, "SUB", gas::kVeryLow, 2, -1, 0)                             \
  X(DIV, 0x04, "DIV", gas::kLow, 2, -1, 0)                                 \
  X(SDIV, 0x05, "SDIV", gas::kLow, 2, -1, 0)                               \
  X(MOD, 0x06, "MOD", gas::kLow, 2, -1, 0)                                 \
  X(SMOD, 0x07, "SMOD", gas::kLow, 2, -1, 0)                               \
  X(ADDMOD, 0x08, "ADDMOD", gas::kMid, 3, -2, 0)                           \
  X(MULMOD, 0x09, "MULMOD", gas::kMid, 3, -2, 0)                           \
  X(EXP, 0x0a, "EXP", gas::kExp, 2, -1, 0)                                 \
  X(SIGNEXTEND, 0x0b, "SIGNEXTEND", gas::kLow, 2, -1, 0)                   \
  X(LT, 0x10, "LT", gas::kVeryLow, 2, -1, 0)                               \
  X(GT, 0x11, "GT", gas::kVeryLow, 2, -1, 0)                               \
  X(SLT, 0x12, "SLT", gas::kVeryLow, 2, -1, 0)                             \
  X(SGT, 0x13, "SGT", gas::kVeryLow, 2, -1, 0)                             \
  X(EQ, 0x14, "EQ", gas::kVeryLow, 2, -1, 0)                               \
  X(ISZERO, 0x15, "ISZERO", gas::kVeryLow, 1, 0, 0)                        \
  X(AND, 0x16, "AND", gas::kVeryLow, 2, -1, 0)                             \
  X(OR, 0x17, "OR", gas::kVeryLow, 2, -1, 0)                               \
  X(XOR, 0x18, "XOR", gas::kVeryLow, 2, -1, 0)                             \
  X(NOT, 0x19, "NOT", gas::kVeryLow, 1, 0, 0)                              \
  X(BYTE, 0x1a, "BYTE", gas::kVeryLow, 2, -1, 0)                           \
  X(SHL, 0x1b, "SHL", gas::kVeryLow, 2, -1, 0)                             \
  X(SHR, 0x1c, "SHR", gas::kVeryLow, 2, -1, 0)                             \
  X(SAR, 0x1d, "SAR", gas::kVeryLow, 2, -1, 0)                             \
  X(SHA3, 0x20, "SHA3", gas::kSha3, 2, -1, 0)                              \
  X(ADDRESS, 0x30, "ADDRESS", gas::kBase, 0, 1, 0)                         \
  X(BALANCE, 0x31, "BALANCE", 0, 1, 0, 0)                                  \
  X(ORIGIN, 0x32, "ORIGIN", gas::kBase, 0, 1, 0)                           \
  X(CALLER, 0x33, "CALLER", gas::kBase, 0, 1, 0)                           \
  X(CALLVALUE, 0x34, "CALLVALUE", gas::kBase, 0, 1, 0)                     \
  X(CALLDATALOAD, 0x35, "CALLDATALOAD", gas::kVeryLow, 1, 0, 0)            \
  X(CALLDATASIZE, 0x36, "CALLDATASIZE", gas::kBase, 0, 1, 0)               \
  X(CALLDATACOPY, 0x37, "CALLDATACOPY", gas::kVeryLow, 3, -3, 0)           \
  X(CODESIZE, 0x38, "CODESIZE", gas::kBase, 0, 1, 0)                       \
  X(CODECOPY, 0x39, "CODECOPY", gas::kVeryLow, 3, -3, 0)                   \
  X(GASPRICE, 0x3a, "GASPRICE", gas::kBase, 0, 1, 0)                       \
  X(EXTCODESIZE, 0x3b, "EXTCODESIZE", 0, 1, 0, 0)                          \
  X(RETURNDATASIZE, 0x3d, "RETURNDATASIZE", gas::kBase, 0, 1, 0)           \
  X(RETURNDATACOPY, 0x3e, "RETURNDATACOPY", gas::kVeryLow, 3, -3, 0)       \
  X(EXTCODEHASH, 0x3f, "EXTCODEHASH", 0, 1, 0, 0)                          \
  X(COINBASE, 0x41, "COINBASE", gas::kBase, 0, 1, 0)                       \
  X(TIMESTAMP, 0x42, "TIMESTAMP", gas::kBase, 0, 1, 0)                     \
  X(NUMBER, 0x43, "NUMBER", gas::kBase, 0, 1, 0)                           \
  X(PREVRANDAO, 0x44, "PREVRANDAO", gas::kBase, 0, 1, 0)                   \
  X(GASLIMIT, 0x45, "GASLIMIT", gas::kBase, 0, 1, 0)                       \
  X(CHAINID, 0x46, "CHAINID", gas::kBase, 0, 1, 0)                         \
  X(SELFBALANCE, 0x47, "SELFBALANCE", gas::kLow, 0, 1, 0)                  \
  X(POP, 0x50, "POP", gas::kBase, 1, -1, 0)                                \
  X(MLOAD, 0x51, "MLOAD", gas::kVeryLow, 1, 0, 0)                          \
  X(MSTORE, 0x52, "MSTORE", gas::kVeryLow, 2, -2, 0)                       \
  X(MSTORE8, 0x53, "MSTORE8", gas::kVeryLow, 2, -2, 0)                     \
  X(SLOAD, 0x54, "SLOAD", 0, 1, 0, 0)                                      \
  X(SSTORE, 0x55, "SSTORE", gas::kSstore, 2, -2, 0)                        \
  X(JUMP, 0x56, "JUMP", gas::kMid, 1, -1, kOpFlagTerminator)               \
  X(JUMPI, 0x57, "JUMPI", gas::kHigh, 2, -2, kOpFlagTerminator)            \
  X(PC, 0x58, "PC", gas::kBase, 0, 1, 0)                                   \
  X(MSIZE, 0x59, "MSIZE", gas::kBase, 0, 1, 0)                             \
  X(GAS, 0x5a, "GAS", gas::kBase, 0, 1, kOpFlagTerminator)                 \
  X(JUMPDEST, 0x5b, "JUMPDEST", gas::kJumpdest, 0, 0, 0)                   \
  X(PUSH0, 0x5f, "PUSH0", gas::kBase, 0, 1, 0)                             \
  X(PUSH1, 0x60, "PUSH", gas::kVeryLow, 0, 1, 0)                           \
  X(PUSH32, 0x7f, "PUSH", gas::kVeryLow, 0, 1, 0)                          \
  X(DUP1, 0x80, "DUP", gas::kVeryLow, 1, 1, 0)                             \
  X(DUP2, 0x81, "DUP", gas::kVeryLow, 2, 1, 0)                             \
  X(DUP3, 0x82, "DUP", gas::kVeryLow, 3, 1, 0)                             \
  X(DUP4, 0x83, "DUP", gas::kVeryLow, 4, 1, 0)                             \
  X(DUP5, 0x84, "DUP", gas::kVeryLow, 5, 1, 0)                             \
  X(DUP6, 0x85, "DUP", gas::kVeryLow, 6, 1, 0)                             \
  X(DUP7, 0x86, "DUP", gas::kVeryLow, 7, 1, 0)                             \
  X(DUP8, 0x87, "DUP", gas::kVeryLow, 8, 1, 0)                             \
  X(DUP16, 0x8f, "DUP", gas::kVeryLow, 16, 1, 0)                           \
  X(SWAP1, 0x90, "SWAP", gas::kVeryLow, 2, 0, 0)                           \
  X(SWAP2, 0x91, "SWAP", gas::kVeryLow, 3, 0, 0)                           \
  X(SWAP3, 0x92, "SWAP", gas::kVeryLow, 4, 0, 0)                           \
  X(SWAP4, 0x93, "SWAP", gas::kVeryLow, 5, 0, 0)                           \
  X(SWAP5, 0x94, "SWAP", gas::kVeryLow, 6, 0, 0)                           \
  X(SWAP6, 0x95, "SWAP", gas::kVeryLow, 7, 0, 0)                           \
  X(SWAP7, 0x96, "SWAP", gas::kVeryLow, 8, 0, 0)                           \
  X(SWAP8, 0x97, "SWAP", gas::kVeryLow, 9, 0, 0)                           \
  X(SWAP16, 0x9f, "SWAP", gas::kVeryLow, 17, 0, 0)                         \
  X(LOG0, 0xa0, "LOG0", gas::kLog, 2, -2, 0)                               \
  X(LOG1, 0xa1, "LOG1", gas::kLog + gas::kLogTopic, 3, -3, 0)              \
  X(LOG2, 0xa2, "LOG2", gas::kLog + 2 * gas::kLogTopic, 4, -4, 0)          \
  X(LOG3, 0xa3, "LOG3", gas::kLog + 3 * gas::kLogTopic, 5, -5, 0)          \
  X(LOG4, 0xa4, "LOG4", gas::kLog + 4 * gas::kLogTopic, 6, -6, 0)          \
  X(CALL, 0xf1, "CALL", 0, 7, -6, kOpFlagTerminator)                       \
  X(RETURN, 0xf3, "RETURN", 0, 2, -2, kOpFlagTerminator)                   \
  X(DELEGATECALL, 0xf4, "DELEGATECALL", 0, 6, -5, kOpFlagTerminator)       \
  X(STATICCALL, 0xfa, "STATICCALL", 0, 6, -5, kOpFlagTerminator)           \
  X(REVERT, 0xfd, "REVERT", 0, 2, -2, kOpFlagTerminator)                   \
  X(INVALID, 0xfe, "INVALID", 0, 0, 0, kOpFlagTerminator)

enum class Op : std::uint8_t {
#define BP_OPCODE_ENUM(ID, VALUE, NAME, GAS, REQ, NET, FLAGS) ID = VALUE,
  BP_OPCODE_TABLE(BP_OPCODE_ENUM)
#undef BP_OPCODE_ENUM
};

/// Mnemonic for diagnostics and the disassembler; "UNKNOWN" for gaps.
std::string_view op_name(std::uint8_t opcode) noexcept;

/// True iff the opcode is PUSH1..PUSH32; `n` receives the immediate size.
constexpr bool is_push(std::uint8_t opcode, std::size_t& n) noexcept {
  if (opcode >= 0x60 && opcode <= 0x7f) {
    n = static_cast<std::size_t>(opcode - 0x60 + 1);
    return true;
  }
  return false;
}

/// Static per-opcode execution facts the analysis pre-pass consumes.
struct OpTraits {
  /// Statically-known portion of the op's first gas charge (pre-summable).
  std::uint32_t static_gas = 0;
  /// Operands the op requires on the stack.
  std::uint8_t stack_required = 0;
  /// Stack-height delta (pushes minus pops).
  std::int8_t stack_net = 0;
  /// Ends a basic block (see kOpFlagTerminator).
  bool terminator = true;  // unknown opcodes fail, so they end blocks too
  /// Valid encoding (false for gaps, which execute as INVALID).
  bool known = false;
};

namespace detail {
constexpr std::array<OpTraits, 256> make_op_traits() {
  std::array<OpTraits, 256> t{};
#define BP_OPCODE_TRAIT(ID, VALUE, NAME, GAS, REQ, NET, FLAGS)          \
  t[VALUE] = OpTraits{static_cast<std::uint32_t>(GAS),                  \
                      static_cast<std::uint8_t>(REQ),                   \
                      static_cast<std::int8_t>(NET),                    \
                      ((FLAGS) & kOpFlagTerminator) != 0, true};
  BP_OPCODE_TABLE(BP_OPCODE_TRAIT)
#undef BP_OPCODE_TRAIT
  // Range members without enum names (same traits as their named peers).
  for (unsigned op = 0x60; op <= 0x7f; ++op)  // PUSH1..PUSH32
    t[op] = OpTraits{gas::kVeryLow, 0, 1, false, true};
  for (unsigned op = 0x80; op <= 0x8f; ++op)  // DUP1..DUP16
    t[op] = OpTraits{gas::kVeryLow, static_cast<std::uint8_t>(op - 0x80 + 1),
                     1, false, true};
  for (unsigned op = 0x90; op <= 0x9f; ++op)  // SWAP1..SWAP16
    t[op] = OpTraits{gas::kVeryLow, static_cast<std::uint8_t>(op - 0x90 + 2),
                     0, false, true};
  for (unsigned op = 0xa0; op <= 0xa4; ++op)  // LOG0..LOG4
    t[op] = OpTraits{
        static_cast<std::uint32_t>(gas::kLog + (op - 0xa0) * gas::kLogTopic),
        static_cast<std::uint8_t>(2 + (op - 0xa0)),
        static_cast<std::int8_t>(-static_cast<int>(2 + (op - 0xa0))), false,
        true};
  return t;
}
}  // namespace detail

inline constexpr std::array<OpTraits, 256> kOpTraits = detail::make_op_traits();

// Spot checks that the macro rows and the range fills agree.
static_assert(kOpTraits[0x01].static_gas == gas::kVeryLow);   // ADD
static_assert(kOpTraits[0x55].static_gas == gas::kSstore);    // SSTORE
static_assert(kOpTraits[0x84].stack_required == 5);           // DUP5
static_assert(kOpTraits[0x96].stack_required == 8);           // SWAP7
static_assert(kOpTraits[0x69].stack_net == 1);                // PUSH10
static_assert(kOpTraits[0xa3].static_gas == 1500);            // LOG3
static_assert(kOpTraits[0xa3].stack_net == -5);               // LOG3
static_assert(kOpTraits[0xf1].terminator && !kOpTraits[0xf1].static_gas);
static_assert(!kOpTraits[0x3c].known);  // gap executes as INVALID
static_assert(kOpTraits[0x5a].terminator);  // GAS observes gas_left

}  // namespace blockpilot::evm
