// EVM bytecode interpreter.
//
// Executes message calls against a state::ExecBuffer (the transaction's
// private write buffer); all state effects are journaled there so a REVERT
// or out-of-gas in an inner frame rolls back cleanly while consumed gas
// stands.  Each top-level transaction tracks EIP-2929-style warm/cold
// access sets spanning its call frames.
//
// Supported instruction set: arithmetic/comparison/bitwise, SHA3,
// environment and block context, memory, storage, control flow, LOG0-4,
// CALL, RETURN, REVERT, STOP, INVALID — see opcodes.hpp.  CREATE and
// SELFDESTRUCT are intentionally absent: the workload deploys contracts at
// genesis (DESIGN.md §1).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "state/exec_buffer.hpp"
#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::evm {

using Bytes = std::vector<std::uint8_t>;

class CodeAnalysisCache;

/// Per-block execution environment (EVM block context opcodes), plus the
/// execution-engine knobs that ride along with it into every
/// execute_transaction call (they are not consensus data and never land
/// in headers or hashes).
struct BlockContext {
  std::uint64_t number = 0;
  std::uint64_t timestamp = 0;
  Address coinbase;
  std::uint64_t gas_limit = 30'000'000;
  U256 prevrandao;
  std::uint64_t chain_id = 1;

  /// CodeAnalysis cache the interpreter resolves code through; null means
  /// the process-wide CodeAnalysisCache::global().  Executors override it
  /// from their config so tests and benches can isolate cache state.
  CodeAnalysisCache* analysis_cache = nullptr;
  /// Runs the frozen pre-analysis interpreter (per-op gas charges, per
  /// -frame jumpdest scan).  The differential oracle for the fast path;
  /// never faster, only bit-identical.
  bool use_reference_interpreter = false;
};

/// A message call (top-level transaction body or inner CALL-family frame).
struct Message {
  Address caller;
  Address to;  // storage/balance context (and code source by default)
  /// Code source when it differs from `to` (DELEGATECALL executes the
  /// target's code in the caller's storage context).  Zero = use `to`.
  Address code_address;
  U256 value;
  Bytes data;
  std::uint64_t gas = 0;
  int depth = 0;
  /// STATICCALL frame: any state mutation (SSTORE, LOG, value transfer)
  /// aborts the frame with kInvalid.
  bool is_static = false;
  /// Whether entering this frame moves `value` from caller to `to`.
  /// False for DELEGATECALL, whose value is inherited for CALLVALUE only.
  bool transfer_value = true;
};

enum class Status : std::uint8_t {
  kSuccess = 0,
  kRevert,         // explicit REVERT: state rolled back, remaining gas kept
  kOutOfGas,       // all frame gas consumed
  kInvalid,        // INVALID opcode / bad jump / stack violation
};

struct LogRecord {
  Address address;
  std::vector<U256> topics;
  Bytes data;
};

struct CallResult {
  Status status = Status::kSuccess;
  std::uint64_t gas_left = 0;
  Bytes output;
  std::vector<LogRecord> logs;
};

/// Mutable per-transaction context shared across call frames.
struct TxContext {
  Address origin;
  U256 gas_price;
  const BlockContext* block = nullptr;

  /// Engine knobs copied from BlockContext by execute_transaction (callers
  /// constructing a TxContext directly get the same defaults).
  CodeAnalysisCache* analysis_cache = nullptr;
  bool use_reference_interpreter = false;

  // EIP-2929 warm sets (cleared per transaction).
  std::unordered_set<Address> warm_accounts;
  std::unordered_set<state::StateKey> warm_slots;

  bool warm_account(const Address& a) {
    return !warm_accounts.insert(a).second;
  }
  bool warm_slot(const state::StateKey& k) {
    return !warm_slots.insert(k).second;
  }
};

inline constexpr int kMaxCallDepth = 1024;
inline constexpr std::size_t kMaxStack = 1024;

/// Executes one message call frame (and, recursively, its inner CALLs).
/// State effects land in `buffer`; on non-success the frame's writes are
/// reverted to the entry checkpoint.
CallResult execute_call(state::ExecBuffer& buffer, TxContext& tx,
                        const Message& msg);

}  // namespace blockpilot::evm
