// Transaction-level state transition (geth's core.ApplyTransaction analog).
//
// Wraps a message-call execution with the transaction envelope: intrinsic
// gas, nonce check/increment, up-front fee escrow, refund, and the coinbase
// fee credit.  All effects land in the caller's ExecBuffer, so the recorded
// read/write sets cover the envelope too — sender nonce and balance are the
// "counter" conflict keys the paper identifies as the dominant source of
// data races (§2.3).
#pragma once

#include "chain/transaction.hpp"
#include "evm/interpreter.hpp"
#include "state/exec_buffer.hpp"

namespace blockpilot::evm {

enum class TxStatus : std::uint8_t {
  /// Included in the block (the inner call may still have reverted; fees
  /// are charged either way, exactly like mainnet).
  kIncluded = 0,
  /// Sender nonce in the snapshot is behind the transaction's nonce: an
  /// earlier same-sender transaction has not committed yet.  Under OCC the
  /// proposer re-queues the transaction (this is how same-sender ordering
  /// emerges as a counter conflict).
  kNotReady,
  /// Structurally unexecutable (intrinsic gas exceeds the limit, nonce in
  /// the past, insufficient funds): dropped from the pool.
  kInvalid,
};

struct TxExecResult {
  TxStatus status = TxStatus::kInvalid;
  Status vm_status = Status::kSuccess;  // inner-call outcome when included
  std::uint64_t gas_used = 0;
  U256 gas_price;  // copied from the transaction for fee computation
  Bytes output;
  std::vector<LogRecord> logs;

  /// Coinbase fee for this transaction.  NOT part of the tracked write set:
  /// committers credit it serially in block order so the coinbase balance
  /// does not become a universal conflict key (DESIGN.md §4).
  U256 fee() const noexcept { return gas_price * U256{gas_used}; }
};

/// Intrinsic gas of a transaction (21000 + calldata byte costs).
std::uint64_t intrinsic_gas(const chain::Transaction& tx) noexcept;

/// Executes `tx` against `buffer`.  On kIncluded the buffer holds the full
/// effect (envelope + call); on kNotReady/kInvalid the buffer is rolled
/// back to its entry state (reads remain recorded — they are what made the
/// decision, so they stay conflict-relevant).
TxExecResult execute_transaction(state::ExecBuffer& buffer,
                                 const BlockContext& block,
                                 const chain::Transaction& tx);

}  // namespace blockpilot::evm
