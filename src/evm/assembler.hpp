// Tiny EVM assembler for constructing workload and test contracts.
//
// Supports opcodes, PUSH with automatic width selection, labels for JUMP
// targets, and raw byte emission.  The workload generator uses it to build
// real token / DEX contracts whose storage behaviour reproduces the hotspot
// conflict patterns of §5.5.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "evm/opcodes.hpp"
#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::evm {

class Assembler {
 public:
  /// Emits a bare opcode.
  Assembler& op(Op opcode);

  /// Emits the narrowest PUSH holding `value` (PUSH1 for zero).
  Assembler& push(const U256& value);
  Assembler& push(std::uint64_t value) { return push(U256{value}); }
  Assembler& push(const Address& addr) { return push(addr.to_u256()); }

  /// Declares a jump label at the current position.  Emits JUMPDEST.
  Assembler& label(const std::string& name);

  /// Emits a PUSH2 of the label's position (fixed up at assemble time),
  /// suitable to precede JUMP/JUMPI.
  Assembler& push_label(const std::string& name);

  /// Emits raw bytes verbatim.
  Assembler& raw(std::vector<std::uint8_t> bytes);

  /// Resolves label fixups and returns the bytecode.
  std::vector<std::uint8_t> assemble();

 private:
  std::vector<std::uint8_t> code_;
  std::unordered_map<std::string, std::size_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;  // offset of hi byte
};

/// Human-readable disassembly (one instruction per line) for debugging.
std::string disassemble(std::span<const std::uint8_t> code);

}  // namespace blockpilot::evm
