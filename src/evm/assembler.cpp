#include "evm/assembler.hpp"

#include <cstdio>

#include "support/assert.hpp"

namespace blockpilot::evm {

Assembler& Assembler::op(Op opcode) {
  code_.push_back(static_cast<std::uint8_t>(opcode));
  return *this;
}

Assembler& Assembler::push(const U256& value) {
  const int bits = value.bit_length();
  std::size_t n = static_cast<std::size_t>((bits + 7) / 8);
  if (n == 0) n = 1;  // PUSH1 0x00
  code_.push_back(static_cast<std::uint8_t>(0x60 + n - 1));
  const auto be = value.to_be_bytes();
  code_.insert(code_.end(), be.end() - static_cast<std::ptrdiff_t>(n),
               be.end());
  return *this;
}

Assembler& Assembler::label(const std::string& name) {
  BP_ASSERT_MSG(!labels_.contains(name), "duplicate label");
  labels_[name] = code_.size();
  return op(Op::JUMPDEST);
}

Assembler& Assembler::push_label(const std::string& name) {
  code_.push_back(0x61);  // PUSH2
  fixups_.emplace_back(code_.size(), name);
  code_.push_back(0);
  code_.push_back(0);
  return *this;
}

Assembler& Assembler::raw(std::vector<std::uint8_t> bytes) {
  code_.insert(code_.end(), bytes.begin(), bytes.end());
  return *this;
}

std::vector<std::uint8_t> Assembler::assemble() {
  for (const auto& [offset, name] : fixups_) {
    const auto it = labels_.find(name);
    BP_ASSERT_MSG(it != labels_.end(), "undefined label");
    const std::size_t target = it->second;
    BP_ASSERT_MSG(target <= 0xffff, "label beyond PUSH2 range");
    code_[offset] = static_cast<std::uint8_t>(target >> 8);
    code_[offset + 1] = static_cast<std::uint8_t>(target & 0xff);
  }
  fixups_.clear();
  return code_;
}

std::string disassemble(std::span<const std::uint8_t> code) {
  std::string out;
  char line[128];
  for (std::size_t pc = 0; pc < code.size();) {
    const std::uint8_t opcode = code[pc];
    std::size_t push_len = 0;
    if (is_push(opcode, push_len)) {
      std::string imm = "0x";
      static constexpr char kDigits[] = "0123456789abcdef";
      for (std::size_t i = 1; i <= push_len && pc + i < code.size(); ++i) {
        imm.push_back(kDigits[code[pc + i] >> 4]);
        imm.push_back(kDigits[code[pc + i] & 0xf]);
      }
      std::snprintf(line, sizeof(line), "%04zx: PUSH%zu %s\n", pc, push_len,
                    imm.c_str());
      out += line;
      pc += 1 + push_len;
    } else {
      std::snprintf(line, sizeof(line), "%04zx: %s\n", pc,
                    std::string(op_name(opcode)).c_str());
      out += line;
      ++pc;
    }
  }
  return out;
}

}  // namespace blockpilot::evm
