// Per-code CodeAnalysis + the process-wide sharded cache keyed by code hash.
//
// BlockPilot executes every transaction at least twice (proposer + each
// validator, more under OCC re-execution), so anything derivable from the
// bytecode alone is computed once per *code hash* and shared across every
// executor instead of being re-derived per frame:
//
//  * jumpdest bitmap — JUMP/JUMPI target validation is a bit probe;
//  * basic blocks — instruction runs with one entry (pc 0, each JUMPDEST,
//    each fall-through past a terminator) and one exit (JUMP, JUMPI, the
//    frame-ending ops, plus GAS and the CALL family, which observe
//    gas_left and therefore must sit on an exact per-op gas boundary).
//    Each block carries the sum of its ops' static gas and the min/max
//    stack heights, so the interpreter charges gas and validates the stack
//    once per block instead of once per op (see interpreter.cpp for the
//    bit-identity argument);
//  * pre-decoded PUSH immediates — U256 values materialized at analysis
//    time, not assembled from bytes on every execution.
//
// The cache follows trie::NodeCache's sharded read-mostly shape (8 shards,
// per-shard mutex, byte-accounted capacity, aggregate stats) but with
// plain FIFO eviction: entries are content-addressed by keccak(code), so
// there is no staleness to manage — set_code with new bytes simply keys a
// different entry — and the working set (deployed contracts) is tiny and
// hot compared to trie nodes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "evm/opcodes.hpp"
#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::evm {

/// Immutable per-code analysis, shared by every frame executing this code.
struct CodeAnalysis {
  /// One basic block: a maximal straight-line instruction run.
  struct Block {
    /// Sum of the members' static gas (OpTraits::static_gas), charged once
    /// at block entry on the fast path.
    std::uint64_t static_gas = 0;
    /// Minimum stack height required at entry for every member op's
    /// operands to be present.
    std::uint32_t stack_required = 0;
    /// Maximum stack growth over the block (peak height minus entry
    /// height, >= 0); entry + growth must stay within kMaxStack.
    std::uint32_t stack_max_growth = 0;
  };

  Hash256 code_hash;
  std::size_t code_size = 0;

  /// Valid JUMPDEST positions (PUSH immediates excluded), one bit per pc.
  std::vector<std::uint64_t> jumpdest_bits;
  /// Per pc: block index + 1 at block-entry instruction pcs, 0 elsewhere.
  /// Control flow can only land on a block-entry pc by *entering* the
  /// block (blocks end right before the next entry), so the interpreter's
  /// per-instruction probe of this array doubles as the entry hook.
  std::vector<std::uint32_t> block_at;
  /// Per instruction pc: static gas of the ops strictly AFTER this op in
  /// its block — the amount the fast path refunds when a dynamic charge
  /// fails mid-block and it degrades to per-op accounting.
  std::vector<std::uint64_t> trailing_gas;
  /// Per PUSH instruction pc: index into `immediates`.
  std::vector<std::uint32_t> imm_index;
  /// Pre-decoded PUSH immediates (truncated-at-end-of-code semantics
  /// match the interpreter's byte-assembly exactly).
  std::vector<U256> immediates;
  std::vector<Block> blocks;

  bool is_jumpdest(std::uint64_t pc) const noexcept {
    return pc < code_size &&
           (jumpdest_bits[pc >> 6] >> (pc & 63)) & 1;
  }

  /// Approximate resident size, for the cache's byte accounting.
  std::size_t memory_bytes() const noexcept;
};

/// Builds the analysis for `code`.  Bumps the process-wide invocation
/// counter (analysis_build_count) — tests pin it to once per code hash.
std::shared_ptr<const CodeAnalysis> analyze_code(
    std::span<const std::uint8_t> code, const Hash256& code_hash);

/// Number of analyze_code invocations since process start (or the last
/// reset).  The regression gate for the old once-per-frame rederivation:
/// executing one contract N times must build exactly one analysis.
std::uint64_t analysis_build_count() noexcept;
void reset_analysis_build_count() noexcept;

/// Sharded, thread-safe cache of CodeAnalysis keyed by keccak(code).
class CodeAnalysisCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t builds = 0;       // analyses constructed by this cache
    std::uint64_t evictions = 0;    // capacity-driven FIFO drops
    std::uint64_t invalidations = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t capacity = 0;

    double hit_rate() const noexcept {
      const double total = static_cast<double>(hits + misses);
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// Generous default: a full mainnet-preset workload's contracts fit in a
  /// fraction of this, so steady state is all hits.
  static constexpr std::size_t kDefaultCapacity = std::size_t{32} << 20;

  explicit CodeAnalysisCache(std::size_t capacity_bytes = kDefaultCapacity);

  /// Returns the analysis for (code_hash, code), building and interning it
  /// on first sight.  The build runs outside the shard lock; when two
  /// threads race on the same new hash, the first insert wins and the
  /// loser's build is discarded (both counted in `builds`).
  std::shared_ptr<const CodeAnalysis> get(const Hash256& code_hash,
                                          std::span<const std::uint8_t> code);

  /// Drops one entry (set_code-style redeployment hygiene; correctness
  /// never depends on it — entries are content-addressed).
  void invalidate(const Hash256& code_hash);

  /// Drops every entry (counters survive; see reset_stats).
  void clear();

  Stats stats() const;
  void reset_stats();

  /// The process-wide cache execute_call uses when the transaction context
  /// does not name one — shared by proposer, validators and the serial
  /// oracle alike.
  static CodeAnalysisCache& global();

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Hash256, std::shared_ptr<const CodeAnalysis>> map;
    std::deque<Hash256> fifo;  // insertion order, for eviction
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t builds = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
  };

  Shard& shard_for(const Hash256& h) noexcept {
    return shards_[h.bytes[0] & (kShards - 1)];
  }
  const Shard& shard_for(const Hash256& h) const noexcept {
    return shards_[h.bytes[0] & (kShards - 1)];
  }

  std::array<Shard, kShards> shards_;
  std::size_t capacity_ = kDefaultCapacity;
};

}  // namespace blockpilot::evm
