#include "evm/state_transition.hpp"

#include "evm/gas.hpp"
#include "support/assert.hpp"

namespace blockpilot::evm {

using state::StateKey;

std::uint64_t intrinsic_gas(const chain::Transaction& tx) noexcept {
  std::uint64_t g = gas::kTxIntrinsic;
  for (const std::uint8_t b : tx.data)
    g += (b == 0) ? gas::kTxDataZero : gas::kTxDataNonZero;
  return g;
}

TxExecResult execute_transaction(state::ExecBuffer& buffer,
                                 const BlockContext& block,
                                 const chain::Transaction& tx) {
  TxExecResult result;
  const std::size_t entry = buffer.checkpoint();

  const std::uint64_t intrinsic = intrinsic_gas(tx);
  if (tx.gas_limit < intrinsic || tx.gas_limit > block.gas_limit) {
    result.status = TxStatus::kInvalid;
    return result;
  }

  // Nonce check.  Reading the sender's nonce/balance here records them in
  // the read set — the envelope itself participates in conflict detection.
  const StateKey nonce_key = StateKey::nonce(tx.from);
  const U256 current_nonce = buffer.read(nonce_key);
  if (current_nonce > U256{tx.nonce}) {
    result.status = TxStatus::kInvalid;  // replayed / stale transaction
    buffer.revert_to(entry);
    return result;
  }
  if (current_nonce < U256{tx.nonce}) {
    result.status = TxStatus::kNotReady;  // predecessor not committed yet
    buffer.revert_to(entry);
    return result;
  }

  // Up-front cost: value + full gas escrow.
  const StateKey balance_key = StateKey::balance(tx.from);
  const U256 fee_escrow = tx.gas_price * U256{tx.gas_limit};
  const U256 upfront = tx.value + fee_escrow;
  const U256 sender_balance = buffer.read(balance_key);
  if (sender_balance < upfront) {
    result.status = TxStatus::kInvalid;
    buffer.revert_to(entry);
    return result;
  }

  buffer.write(nonce_key, current_nonce + U256{1});
  buffer.write(balance_key, sender_balance - fee_escrow);

  Message msg;
  msg.caller = tx.from;
  msg.to = tx.to;
  msg.value = tx.value;
  msg.data = tx.data;
  msg.gas = tx.gas_limit - intrinsic;
  msg.depth = 0;

  TxContext ctx;
  ctx.origin = tx.from;
  ctx.gas_price = tx.gas_price;
  ctx.block = &block;
  ctx.analysis_cache = block.analysis_cache;
  ctx.use_reference_interpreter = block.use_reference_interpreter;

  const CallResult call = execute_call(buffer, ctx, msg);

  result.status = TxStatus::kIncluded;
  result.vm_status = call.status;
  result.gas_price = tx.gas_price;
  result.gas_used = tx.gas_limit - call.gas_left;
  result.output = call.output;
  result.logs = call.logs;
  BP_ASSERT(result.gas_used >= intrinsic);

  // Refund unused escrow to the sender, credit the fee to the coinbase.
  const U256 refund = tx.gas_price * U256{call.gas_left};
  if (!refund.is_zero()) {
    const U256 bal = buffer.read(balance_key);
    buffer.write(balance_key, bal + refund);
  }
  // NOTE: the coinbase fee credit is deliberately NOT written here.  At
  // account granularity it would make every transaction conflict with every
  // other through the coinbase balance, collapsing each block into a single
  // subgraph.  Like production parallel-EVM designs (Block-STM, OCC-DA),
  // the fee is returned to the caller (result.fee()) and credited serially
  // at commit time, in block order — see DESIGN.md §4.
  return result;
}

}  // namespace blockpilot::evm
