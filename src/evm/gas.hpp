// Gas schedule.
//
// A faithful-in-shape subset of the Ethereum fee schedule (yellow paper
// appendix G + EIP-2929 warm/cold access lists).  What matters for
// BlockPilot's reproduction is that storage operations dominate transaction
// cost — the paper's validator scheduler uses gas as its execution-time
// estimate precisely because "the most time-consuming operations (namely,
// SLOAD and SSTORE) have very high gas costs" (§4.3).
//
// Documented simplifications vs mainnet:
//  * SSTORE costs a flat kSstore regardless of the slot's current value.
//    Mainnet's zero/nonzero-dependent pricing makes SSTORE gas a *read* of
//    the slot, which would turn every write-write conflict into a
//    read-write conflict and void the paper's WSI property that
//    "transactions with conflicting writes can be committed to the same
//    block" (§4.2) — the gas-induced fee would differ between the
//    proposer's snapshot and the validator's serial replay.  A flat cost
//    keeps blind writes blind while preserving storage-op gas dominance.
//  * No access lists in transactions; every first touch in a tx is cold.
//  * No CREATE / SELFDESTRUCT costs (those opcodes are not in the workload).
#pragma once

#include <cstdint>

namespace blockpilot::evm::gas {

inline constexpr std::uint64_t kZero = 0;
inline constexpr std::uint64_t kBase = 2;
inline constexpr std::uint64_t kVeryLow = 3;
inline constexpr std::uint64_t kLow = 5;
inline constexpr std::uint64_t kMid = 8;
inline constexpr std::uint64_t kHigh = 10;

inline constexpr std::uint64_t kJumpdest = 1;

inline constexpr std::uint64_t kExp = 10;
inline constexpr std::uint64_t kExpByte = 50;

inline constexpr std::uint64_t kSha3 = 30;
inline constexpr std::uint64_t kSha3Word = 6;

inline constexpr std::uint64_t kColdSload = 2100;
inline constexpr std::uint64_t kWarmAccess = 100;
inline constexpr std::uint64_t kColdAccountAccess = 2600;

inline constexpr std::uint64_t kSstore = 10000;

inline constexpr std::uint64_t kLog = 375;
inline constexpr std::uint64_t kLogTopic = 375;
inline constexpr std::uint64_t kLogData = 8;

inline constexpr std::uint64_t kCallValue = 9000;
inline constexpr std::uint64_t kCallStipend = 2300;

inline constexpr std::uint64_t kMemory = 3;       // linear word cost
inline constexpr std::uint64_t kQuadDivisor = 512;  // quadratic term divisor

inline constexpr std::uint64_t kCopyWord = 3;

inline constexpr std::uint64_t kTxIntrinsic = 21000;
inline constexpr std::uint64_t kTxDataZero = 4;
inline constexpr std::uint64_t kTxDataNonZero = 16;

/// Memory expansion cost for a size of `words` 32-byte words.
constexpr std::uint64_t memory_cost(std::uint64_t words) noexcept {
  return kMemory * words + (words * words) / kQuadDivisor;
}

}  // namespace blockpilot::evm::gas
