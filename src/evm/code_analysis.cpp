#include "evm/code_analysis.hpp"

#include <algorithm>
#include <cstring>

#include "support/assert.hpp"

namespace blockpilot::evm {
namespace {

std::atomic<std::uint64_t> g_build_count{0};

}  // namespace

std::uint64_t analysis_build_count() noexcept {
  return g_build_count.load(std::memory_order_relaxed);
}

void reset_analysis_build_count() noexcept {
  g_build_count.store(0, std::memory_order_relaxed);
}

std::size_t CodeAnalysis::memory_bytes() const noexcept {
  return sizeof(CodeAnalysis) +
         jumpdest_bits.size() * sizeof(std::uint64_t) +
         block_at.size() * sizeof(std::uint32_t) +
         trailing_gas.size() * sizeof(std::uint64_t) +
         imm_index.size() * sizeof(std::uint32_t) +
         immediates.size() * sizeof(U256) + blocks.size() * sizeof(Block);
}

std::shared_ptr<const CodeAnalysis> analyze_code(
    std::span<const std::uint8_t> code, const Hash256& code_hash) {
  g_build_count.fetch_add(1, std::memory_order_relaxed);

  auto analysis = std::make_shared<CodeAnalysis>();
  CodeAnalysis& a = *analysis;
  const std::size_t n = code.size();
  a.code_hash = code_hash;
  a.code_size = n;
  a.jumpdest_bits.assign((n + 63) / 64, 0);
  a.block_at.assign(n, 0);
  a.trailing_gas.assign(n, 0);
  a.imm_index.assign(n, 0);

  // Pass 1: instruction boundaries (PUSH immediates are data, not code),
  // jumpdest bitmap, and pre-decoded PUSH values.
  struct Instr {
    std::uint32_t pc;
    std::uint8_t op;
  };
  std::vector<Instr> instrs;
  instrs.reserve(n);
  for (std::size_t pc = 0; pc < n;) {
    const std::uint8_t op = code[pc];
    if (op == static_cast<std::uint8_t>(Op::JUMPDEST))
      a.jumpdest_bits[pc >> 6] |= std::uint64_t{1} << (pc & 63);
    instrs.push_back({static_cast<std::uint32_t>(pc), op});
    std::size_t push_len = 0;
    if (is_push(op, push_len)) {
      // Decode the immediate once, replicating the interpreter's
      // truncation: bytes past the end of code read as zero *within the
      // declared width* (a truncated PUSH2 of one byte 0xAB is 0xAB00).
      std::array<std::uint8_t, 32> imm{};
      const std::size_t avail = std::min(push_len, n - pc - 1);
      std::memcpy(imm.data() + (32 - push_len), code.data() + pc + 1, avail);
      a.imm_index[pc] = static_cast<std::uint32_t>(a.immediates.size());
      a.immediates.push_back(
          U256::from_be_bytes(std::span(imm).subspan(32 - push_len)));
      pc += 1 + push_len;
    } else {
      ++pc;
    }
  }

  // Pass 2: group instructions into basic blocks.  A block starts at pc 0,
  // at every JUMPDEST instruction, and after every terminator; it ends at
  // its terminator or at the last instruction of the code.
  std::size_t i = 0;
  while (i < instrs.size()) {
    std::size_t end = i;  // inclusive index of the block's last member
    while (end + 1 < instrs.size()) {
      if (kOpTraits[instrs[end].op].terminator) break;
      const std::uint8_t next = instrs[end + 1].op;
      if (next == static_cast<std::uint8_t>(Op::JUMPDEST)) break;
      ++end;
    }

    CodeAnalysis::Block blk;
    std::int64_t height = 0;      // stack delta relative to block entry
    std::int64_t min_height = 0;  // most negative operand reach
    std::int64_t max_height = 0;  // peak growth
    for (std::size_t j = i; j <= end; ++j) {
      const OpTraits& t = kOpTraits[instrs[j].op];
      blk.static_gas += t.static_gas;
      min_height = std::min(min_height, height - t.stack_required);
      height += t.stack_net;
      max_height = std::max(max_height, height);
    }
    blk.stack_required = static_cast<std::uint32_t>(-min_height);
    blk.stack_max_growth = static_cast<std::uint32_t>(max_height);

    // Suffix sums of static gas within the block (refund amounts for the
    // mid-block degrade path).
    std::uint64_t trailing = 0;
    for (std::size_t j = end + 1; j-- > i;) {
      a.trailing_gas[instrs[j].pc] = trailing;
      trailing += kOpTraits[instrs[j].op].static_gas;
    }

    a.block_at[instrs[i].pc] =
        static_cast<std::uint32_t>(a.blocks.size() + 1);
    a.blocks.push_back(blk);
    i = end + 1;
  }

  return analysis;
}

CodeAnalysisCache::CodeAnalysisCache(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

std::shared_ptr<const CodeAnalysis> CodeAnalysisCache::get(
    const Hash256& code_hash, std::span<const std::uint8_t> code) {
  Shard& s = shard_for(code_hash);
  {
    std::scoped_lock lk(s.mu);
    const auto it = s.map.find(code_hash);
    if (it != s.map.end()) {
      ++s.hits;
      return it->second;
    }
    ++s.misses;
  }

  // Build outside the lock: analysis cost scales with code size and must
  // not serialize unrelated lookups on this shard.
  std::shared_ptr<const CodeAnalysis> built = analyze_code(code, code_hash);

  std::scoped_lock lk(s.mu);
  ++s.builds;
  const auto [it, inserted] = s.map.emplace(code_hash, built);
  if (!inserted) return it->second;  // lost a same-hash race; theirs wins
  s.fifo.push_back(code_hash);
  s.bytes += built->memory_bytes();
  const std::size_t shard_budget = capacity_ / kShards;
  while (s.bytes > shard_budget && s.fifo.size() > 1) {
    const Hash256 victim = s.fifo.front();
    s.fifo.pop_front();
    const auto vit = s.map.find(victim);
    if (vit != s.map.end()) {
      s.bytes -= vit->second->memory_bytes();
      s.map.erase(vit);
      ++s.evictions;
    }
  }
  return built;
}

void CodeAnalysisCache::invalidate(const Hash256& code_hash) {
  Shard& s = shard_for(code_hash);
  std::scoped_lock lk(s.mu);
  const auto it = s.map.find(code_hash);
  if (it == s.map.end()) return;
  s.bytes -= it->second->memory_bytes();
  s.map.erase(it);
  s.fifo.erase(std::find(s.fifo.begin(), s.fifo.end(), code_hash));
  ++s.invalidations;
}

void CodeAnalysisCache::clear() {
  for (Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    s.map.clear();
    s.fifo.clear();
    s.bytes = 0;
  }
}

CodeAnalysisCache::Stats CodeAnalysisCache::stats() const {
  Stats out;
  out.capacity = capacity_;
  for (const Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.builds += s.builds;
    out.evictions += s.evictions;
    out.invalidations += s.invalidations;
    out.entries += s.map.size();
    out.bytes += s.bytes;
  }
  return out;
}

void CodeAnalysisCache::reset_stats() {
  for (Shard& s : shards_) {
    std::scoped_lock lk(s.mu);
    s.hits = s.misses = s.builds = s.evictions = s.invalidations = 0;
  }
}

CodeAnalysisCache& CodeAnalysisCache::global() {
  static CodeAnalysisCache cache;
  return cache;
}

}  // namespace blockpilot::evm
