// U256: the EVM's 256-bit word.
//
// Little-endian array of four 64-bit limbs (limb 0 = least significant).
// Arithmetic wraps modulo 2^256 exactly as EVM opcodes require; division by
// zero yields zero (EVM DIV/MOD semantics) rather than trapping.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>

namespace blockpilot {

class U256 {
 public:
  constexpr U256() noexcept = default;
  constexpr U256(std::uint64_t v) noexcept : limbs_{v, 0, 0, 0} {}  // NOLINT: implicit by design — mirrors EVM literals

  constexpr U256(std::uint64_t l3, std::uint64_t l2, std::uint64_t l1,
                 std::uint64_t l0) noexcept
      : limbs_{l0, l1, l2, l3} {}  // big-endian limb order in the ctor

  /// Interprets a big-endian byte string (up to 32 bytes) as an integer.
  static U256 from_be_bytes(std::span<const std::uint8_t> bytes) noexcept;

  /// 32-byte big-endian encoding (EVM word layout).
  std::array<std::uint8_t, 32> to_be_bytes() const noexcept;

  /// Parses "0x"-optional hexadecimal. Asserts on invalid characters.
  static U256 from_hex(std::string_view hex);

  /// Lower-case hex without leading zeros, "0x" prefix ("0x0" for zero).
  std::string to_hex() const;

  constexpr std::uint64_t limb(std::size_t i) const noexcept {
    return limbs_[i];
  }

  constexpr bool is_zero() const noexcept {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }

  /// Truncates to the low 64 bits.
  constexpr std::uint64_t low64() const noexcept { return limbs_[0]; }

  /// True iff the value fits in 64 bits.
  constexpr bool fits64() const noexcept {
    return (limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }

  /// Index of the highest set bit plus one; 0 for the value zero.
  int bit_length() const noexcept;

  /// Value of bit i (0 = LSB).
  constexpr bool bit(int i) const noexcept {
    return (limbs_[static_cast<std::size_t>(i) / 64] >>
            (static_cast<std::size_t>(i) % 64)) &
           1;
  }

  // -- wrapping arithmetic (mod 2^256) --
  friend U256 operator+(const U256& a, const U256& b) noexcept;
  friend U256 operator-(const U256& a, const U256& b) noexcept;
  friend U256 operator*(const U256& a, const U256& b) noexcept;
  /// EVM DIV: x / 0 == 0.
  friend U256 operator/(const U256& a, const U256& b) noexcept;
  /// EVM MOD: x % 0 == 0.
  friend U256 operator%(const U256& a, const U256& b) noexcept;

  U256& operator+=(const U256& o) noexcept { return *this = *this + o; }
  U256& operator-=(const U256& o) noexcept { return *this = *this - o; }
  U256& operator*=(const U256& o) noexcept { return *this = *this * o; }

  // -- bitwise --
  friend constexpr U256 operator&(const U256& a, const U256& b) noexcept {
    return raw(a.limbs_[0] & b.limbs_[0], a.limbs_[1] & b.limbs_[1],
               a.limbs_[2] & b.limbs_[2], a.limbs_[3] & b.limbs_[3]);
  }
  friend constexpr U256 operator|(const U256& a, const U256& b) noexcept {
    return raw(a.limbs_[0] | b.limbs_[0], a.limbs_[1] | b.limbs_[1],
               a.limbs_[2] | b.limbs_[2], a.limbs_[3] | b.limbs_[3]);
  }
  friend constexpr U256 operator^(const U256& a, const U256& b) noexcept {
    return raw(a.limbs_[0] ^ b.limbs_[0], a.limbs_[1] ^ b.limbs_[1],
               a.limbs_[2] ^ b.limbs_[2], a.limbs_[3] ^ b.limbs_[3]);
  }
  friend constexpr U256 operator~(const U256& a) noexcept {
    return raw(~a.limbs_[0], ~a.limbs_[1], ~a.limbs_[2], ~a.limbs_[3]);
  }

  /// Logical shifts; shifts >= 256 yield zero (EVM SHL/SHR).
  U256 shl(unsigned n) const noexcept;
  U256 shr(unsigned n) const noexcept;
  /// Arithmetic right shift treating the value as two's-complement (SAR).
  U256 sar(unsigned n) const noexcept;

  // -- comparisons --
  friend constexpr bool operator==(const U256& a, const U256& b) noexcept =
      default;
  friend constexpr std::strong_ordering operator<=>(const U256& a,
                                                    const U256& b) noexcept {
    for (int i = 3; i >= 0; --i) {
      if (a.limbs_[static_cast<std::size_t>(i)] !=
          b.limbs_[static_cast<std::size_t>(i)])
        return a.limbs_[static_cast<std::size_t>(i)] <=>
               b.limbs_[static_cast<std::size_t>(i)];
    }
    return std::strong_ordering::equal;
  }

  /// Signed comparison over the two's-complement interpretation (SLT/SGT).
  static bool signed_less(const U256& a, const U256& b) noexcept;

  constexpr bool negative() const noexcept {
    return (limbs_[3] >> 63) != 0;
  }

  /// Two's-complement negation.
  U256 negate() const noexcept { return ~*this + U256{1}; }

  // -- EVM-specific operations --
  /// Signed division: SDIV semantics (trunc toward zero, x/0 == 0,
  /// MIN/-1 == MIN).
  static U256 sdiv(const U256& a, const U256& b) noexcept;
  /// Signed remainder: SMOD semantics (sign follows dividend, x%0 == 0).
  static U256 smod(const U256& a, const U256& b) noexcept;
  /// (a + b) mod m with 512-bit intermediate; m == 0 yields 0 (ADDMOD).
  static U256 addmod(const U256& a, const U256& b, const U256& m) noexcept;
  /// (a * b) mod m with 512-bit intermediate; m == 0 yields 0 (MULMOD).
  static U256 mulmod(const U256& a, const U256& b, const U256& m) noexcept;
  /// a ** e mod 2^256 by square-and-multiply (EXP).
  static U256 exp(const U256& a, const U256& e) noexcept;
  /// Sign-extends from byte index k (0-based from LSB); k >= 31 is identity
  /// (SIGNEXTEND).
  static U256 signextend(const U256& k, const U256& x) noexcept;
  /// Byte i of the big-endian encoding (BYTE opcode; i >= 32 yields 0).
  static U256 byte(const U256& i, const U256& x) noexcept;

  /// FNV-1a style hash for unordered containers.
  std::size_t hash() const noexcept;

 private:
  static constexpr U256 raw(std::uint64_t l0, std::uint64_t l1,
                            std::uint64_t l2, std::uint64_t l3) noexcept {
    U256 v;
    v.limbs_ = {l0, l1, l2, l3};
    return v;
  }

  // Divides producing quotient and remainder; divisor must be non-zero.
  static void divmod(const U256& num, const U256& den, U256& quot,
                     U256& rem) noexcept;

  std::array<std::uint64_t, 4> limbs_{};  // little-endian limb order
};

}  // namespace blockpilot

template <>
struct std::hash<blockpilot::U256> {
  std::size_t operator()(const blockpilot::U256& v) const noexcept {
    return v.hash();
  }
};
