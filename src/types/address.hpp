// Fixed-size account address (20 bytes) and hash (32 bytes) value types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "crypto/keccak.hpp"
#include "types/u256.hpp"

namespace blockpilot {

/// 20-byte Ethereum-style account address.
struct Address {
  std::array<std::uint8_t, 20> bytes{};

  constexpr Address() noexcept = default;

  /// Deterministic synthetic address derived from an integer id; used by the
  /// workload generator to create account universes reproducibly.
  static Address from_id(std::uint64_t id) noexcept {
    Address a;
    for (std::size_t i = 0; i < 8; ++i)
      a.bytes[19 - i] = static_cast<std::uint8_t>(id >> (8 * i));
    return a;
  }

  static Address from_hex(std::string_view hex);

  /// The address zero-extended to a 256-bit word (EVM ADDRESS/CALLER push).
  U256 to_u256() const noexcept {
    return U256::from_be_bytes(std::span(bytes));
  }

  /// Truncates the low 20 bytes of a word to an address (EVM call targets).
  static Address from_u256(const U256& v) noexcept {
    const auto be = v.to_be_bytes();
    Address a;
    std::memcpy(a.bytes.data(), be.data() + 12, 20);
    return a;
  }

  bool is_zero() const noexcept {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }

  std::string to_hex() const;

  friend constexpr bool operator==(const Address&, const Address&) noexcept =
      default;
  friend constexpr auto operator<=>(const Address&, const Address&) noexcept =
      default;
};

/// 32-byte hash value (Keccak-256 digests, state roots, tx hashes).
struct Hash256 {
  std::array<std::uint8_t, 32> bytes{};

  constexpr Hash256() noexcept = default;
  explicit Hash256(const crypto::Digest& d) noexcept : bytes(d) {}

  static Hash256 of(std::span<const std::uint8_t> data) noexcept {
    return Hash256{crypto::keccak256(data)};
  }

  bool is_zero() const noexcept {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }

  U256 to_u256() const noexcept {
    return U256::from_be_bytes(std::span(bytes));
  }

  std::string to_hex() const;

  friend constexpr bool operator==(const Hash256&, const Hash256&) noexcept =
      default;
  friend constexpr auto operator<=>(const Hash256&, const Hash256&) noexcept =
      default;
};

// -- hex helpers shared by the value types --

/// Encodes bytes as lower-case hex with a "0x" prefix.
std::string hex_encode(std::span<const std::uint8_t> data);

/// Decodes "0x"-optional hex; asserts on malformed input.
std::vector<std::uint8_t> hex_decode(std::string_view hex);

}  // namespace blockpilot

template <>
struct std::hash<blockpilot::Address> {
  std::size_t operator()(const blockpilot::Address& a) const noexcept {
    // Addresses produced by from_id put entropy in the tail; FNV over all
    // bytes keeps synthetic and hash-derived addresses well distributed.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (auto b : a.bytes) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

template <>
struct std::hash<blockpilot::Hash256> {
  std::size_t operator()(const blockpilot::Hash256& v) const noexcept {
    std::uint64_t h;
    std::memcpy(&h, v.bytes.data(), sizeof(h));
    return static_cast<std::size_t>(h);
  }
};
