#include "types/u256.hpp"

#include <bit>
#include <cstring>

#include "support/assert.hpp"

namespace blockpilot {
namespace {

// 512-bit little-endian scratch value used for ADDMOD/MULMOD intermediates.
using Wide = std::array<std::uint64_t, 8>;

Wide mul_full(const U256& a, const U256& b) noexcept {
  Wide out{};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const __uint128_t cur = static_cast<__uint128_t>(a.limb(i)) * b.limb(j) +
                              out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out[i + 4] = carry;
  }
  return out;
}

int wide_bit_length(const Wide& w) noexcept {
  for (int i = 7; i >= 0; --i) {
    if (w[static_cast<std::size_t>(i)] != 0)
      return 64 * i + 64 - std::countl_zero(w[static_cast<std::size_t>(i)]);
  }
  return 0;
}

bool wide_geq(const Wide& a, const Wide& b) noexcept {
  for (int i = 7; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (a[idx] != b[idx]) return a[idx] > b[idx];
  }
  return true;
}

void wide_sub(Wide& a, const Wide& b) noexcept {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t bi = b[i] + borrow;
    const std::uint64_t next_borrow =
        (bi < b[i]) || (a[i] < bi) ? 1 : 0;
    a[i] -= bi;
    borrow = next_borrow;
  }
}

void wide_shl1(Wide& a) noexcept {
  for (int i = 7; i > 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    a[idx] = (a[idx] << 1) | (a[idx - 1] >> 63);
  }
  a[0] <<= 1;
}

// Remainder of a 512-bit value modulo a 256-bit modulus by binary long
// division.  Used only by ADDMOD/MULMOD, which are rare opcodes; clarity
// beats a full Knuth algorithm D here.
U256 wide_mod(Wide value, const U256& m) noexcept {
  BP_ASSERT(!m.is_zero());
  Wide modulus{m.limb(0), m.limb(1), m.limb(2), m.limb(3), 0, 0, 0, 0};
  int shift = wide_bit_length(value) - wide_bit_length(modulus);
  if (shift < 0) shift = 0;
  // Align modulus with the dividend's top bit.
  Wide shifted = modulus;
  for (int i = 0; i < shift; ++i) wide_shl1(shifted);
  for (int i = shift; i >= 0; --i) {
    if (wide_geq(value, shifted)) wide_sub(value, shifted);
    // Shift right by one.
    for (std::size_t j = 0; j + 1 < 8; ++j)
      shifted[j] = (shifted[j] >> 1) | (shifted[j + 1] << 63);
    shifted[7] >>= 1;
  }
  return U256{value[3], value[2], value[1], value[0]};
}

}  // namespace

U256 U256::from_be_bytes(std::span<const std::uint8_t> bytes) noexcept {
  BP_ASSERT(bytes.size() <= 32);
  // Right-align the input (a short span is the big-endian suffix), then
  // assemble whole limbs with byte swaps — the EVM memory ops call this on
  // every MLOAD, so the old shift-per-byte loop was a hot-path tax.
  std::array<std::uint8_t, 32> buf{};
  std::memcpy(buf.data() + (32 - bytes.size()), bytes.data(), bytes.size());
  U256 v;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t w;
    std::memcpy(&w, buf.data() + (3 - i) * 8, 8);
    v.limbs_[i] = __builtin_bswap64(w);
  }
  return v;
}

std::array<std::uint8_t, 32> U256::to_be_bytes() const noexcept {
  std::array<std::uint8_t, 32> out;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t w = __builtin_bswap64(limbs_[3 - i]);
    std::memcpy(out.data() + i * 8, &w, 8);
  }
  return out;
}

U256 U256::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  BP_ASSERT_MSG(!hex.empty() && hex.size() <= 64, "hex literal out of range");
  U256 v;
  for (char c : hex) {
    std::uint64_t nibble;
    if (c >= '0' && c <= '9')
      nibble = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      nibble = static_cast<std::uint64_t>(c - 'A' + 10);
    else
      BP_ASSERT_MSG(false, "invalid hex character");
    v = v.shl(4);
    v.limbs_[0] |= nibble;
  }
  return v;
}

std::string U256::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  bool seen = false;
  for (int i = 63; i >= 0; --i) {
    const auto nibble = static_cast<unsigned>(
        (limbs_[static_cast<std::size_t>(i) / 16] >>
         (4 * (static_cast<std::size_t>(i) % 16))) &
        0xf);
    if (nibble != 0) seen = true;
    if (seen) out.push_back(kDigits[nibble]);
  }
  if (!seen) out.push_back('0');
  return out;
}

int U256::bit_length() const noexcept {
  for (int i = 3; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (limbs_[idx] != 0) return 64 * i + 64 - std::countl_zero(limbs_[idx]);
  }
  return 0;
}

U256 operator+(const U256& a, const U256& b) noexcept {
  U256 out;
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const __uint128_t cur =
        static_cast<__uint128_t>(a.limbs_[i]) + b.limbs_[i] + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  return out;
}

U256 operator-(const U256& a, const U256& b) noexcept {
  U256 out;
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t bi = b.limbs_[i];
    const std::uint64_t ai = a.limbs_[i];
    const std::uint64_t diff = ai - bi - borrow;
    borrow = (ai < bi || (ai == bi && borrow)) ? 1 : 0;
    out.limbs_[i] = diff;
  }
  return out;
}

U256 operator*(const U256& a, const U256& b) noexcept {
  const Wide w = mul_full(a, b);
  return U256{w[3], w[2], w[1], w[0]};
}

void U256::divmod(const U256& num, const U256& den, U256& quot,
                  U256& rem) noexcept {
  BP_ASSERT(!den.is_zero());
  quot = U256{};
  rem = U256{};
  if (num < den) {
    rem = num;
    return;
  }
  // Fast path: both operands fit in 64 bits.
  if (num.fits64()) {
    quot = U256{num.limbs_[0] / den.limbs_[0]};
    rem = U256{num.limbs_[0] % den.limbs_[0]};
    return;
  }
  // Fast path: 64-bit divisor — schoolbook limb-by-limb with 128-bit step.
  if (den.fits64()) {
    const std::uint64_t d = den.limbs_[0];
    __uint128_t r = 0;
    for (int i = 3; i >= 0; --i) {
      const auto idx = static_cast<std::size_t>(i);
      const __uint128_t cur = (r << 64) | num.limbs_[idx];
      quot.limbs_[idx] = static_cast<std::uint64_t>(cur / d);
      r = cur % d;
    }
    rem = U256{static_cast<std::uint64_t>(r)};
    return;
  }
  // General case: binary long division over the bit-length gap.
  const int shift = num.bit_length() - den.bit_length();
  U256 shifted = den.shl(static_cast<unsigned>(shift));
  U256 acc = num;
  for (int i = shift; i >= 0; --i) {
    if (acc >= shifted) {
      acc -= shifted;
      quot.limbs_[static_cast<std::size_t>(i) / 64] |=
          std::uint64_t{1} << (static_cast<std::size_t>(i) % 64);
    }
    shifted = shifted.shr(1);
  }
  rem = acc;
}

U256 operator/(const U256& a, const U256& b) noexcept {
  if (b.is_zero()) return U256{};
  U256 q, r;
  U256::divmod(a, b, q, r);
  return q;
}

U256 operator%(const U256& a, const U256& b) noexcept {
  if (b.is_zero()) return U256{};
  U256 q, r;
  U256::divmod(a, b, q, r);
  return r;
}

U256 U256::shl(unsigned n) const noexcept {
  if (n >= 256) return U256{};
  U256 out;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t src = i - limb_shift;
    if (i < limb_shift) continue;
    out.limbs_[i] = limbs_[src] << bit_shift;
    if (bit_shift != 0 && src > 0)
      out.limbs_[i] |= limbs_[src - 1] >> (64 - bit_shift);
  }
  return out;
}

U256 U256::shr(unsigned n) const noexcept {
  if (n >= 256) return U256{};
  U256 out;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t src = i + limb_shift;
    if (src >= 4) continue;
    out.limbs_[i] = limbs_[src] >> bit_shift;
    if (bit_shift != 0 && src + 1 < 4)
      out.limbs_[i] |= limbs_[src + 1] << (64 - bit_shift);
  }
  return out;
}

U256 U256::sar(unsigned n) const noexcept {
  if (!negative()) return shr(n);
  if (n >= 256) return ~U256{};  // all ones
  // shr then set the top n bits.
  U256 out = shr(n);
  const U256 mask = (~U256{}).shl(256 - n);
  return out | mask;
}

bool U256::signed_less(const U256& a, const U256& b) noexcept {
  const bool an = a.negative();
  const bool bn = b.negative();
  if (an != bn) return an;
  return a < b;
}

U256 U256::sdiv(const U256& a, const U256& b) noexcept {
  if (b.is_zero()) return U256{};
  const bool an = a.negative();
  const bool bn = b.negative();
  const U256 ua = an ? a.negate() : a;
  const U256 ub = bn ? b.negate() : b;
  U256 q = ua / ub;
  return (an != bn) ? q.negate() : q;
}

U256 U256::smod(const U256& a, const U256& b) noexcept {
  if (b.is_zero()) return U256{};
  const bool an = a.negative();
  const U256 ua = an ? a.negate() : a;
  const U256 ub = b.negative() ? b.negate() : b;
  U256 r = ua % ub;
  return an ? r.negate() : r;
}

U256 U256::addmod(const U256& a, const U256& b, const U256& m) noexcept {
  if (m.is_zero()) return U256{};
  Wide sum{};
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const __uint128_t cur =
        static_cast<__uint128_t>(a.limb(i)) + b.limb(i) + carry;
    sum[i] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  sum[4] = carry;
  return wide_mod(sum, m);
}

U256 U256::mulmod(const U256& a, const U256& b, const U256& m) noexcept {
  if (m.is_zero()) return U256{};
  return wide_mod(mul_full(a, b), m);
}

U256 U256::exp(const U256& a, const U256& e) noexcept {
  U256 result{1};
  U256 base = a;
  const int bits = e.bit_length();
  for (int i = 0; i < bits; ++i) {
    if (e.bit(i)) result *= base;
    base *= base;
  }
  return result;
}

U256 U256::signextend(const U256& k, const U256& x) noexcept {
  if (!k.fits64() || k.low64() >= 31) return x;
  const unsigned bit_index = static_cast<unsigned>(k.low64()) * 8 + 7;
  const U256 mask = (U256{1}.shl(bit_index + 1)) - U256{1};
  if (x.bit(static_cast<int>(bit_index))) return x | ~mask;
  return x & mask;
}

U256 U256::byte(const U256& i, const U256& x) noexcept {
  if (!i.fits64() || i.low64() >= 32) return U256{};
  const auto bytes = x.to_be_bytes();
  return U256{bytes[static_cast<std::size_t>(i.low64())]};
}

std::size_t U256::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t limb : limbs_) {
    h ^= limb;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace blockpilot
