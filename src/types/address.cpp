#include "types/address.hpp"

#include <vector>

#include "support/assert.hpp"

namespace blockpilot {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  BP_ASSERT_MSG(false, "invalid hex character");
}

}  // namespace

std::string hex_encode(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  out.reserve(2 + data.size() * 2);
  for (auto b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> hex_decode(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  BP_ASSERT_MSG(hex.size() % 2 == 0, "odd-length hex string");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_digit(hex[i]) << 4) |
                                            hex_digit(hex[i + 1])));
  }
  return out;
}

Address Address::from_hex(std::string_view hex) {
  const auto raw = hex_decode(hex);
  BP_ASSERT_MSG(raw.size() == 20, "address must be 20 bytes");
  Address a;
  std::memcpy(a.bytes.data(), raw.data(), 20);
  return a;
}

std::string Address::to_hex() const { return hex_encode(std::span(bytes)); }

std::string Hash256::to_hex() const { return hex_encode(std::span(bytes)); }

}  // namespace blockpilot
